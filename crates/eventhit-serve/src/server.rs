//! The TCP serving frontend: sessions multiplexed onto a [`Pool`], one
//! `OnlinePredictor` lane per admitted stream, streams partitioned across
//! shards by a deterministic router.
//!
//! # Determinism
//!
//! Each admitted stream gets its own predictor from the [`LaneFactory`]
//! and its own bounded queue — no state is shared between streams, and a
//! session drains each accepted batch through the lane synchronously
//! before replying. A stream's decision sequence is therefore a pure
//! function of its own frame sequence, exactly as in the in-process
//! `run_lanes` path, regardless of how many sessions run concurrently,
//! how many workers the pool has, or how many shards the server runs.
//! The loopback soak tests in `tests/serve.rs` and `tests/fleet_serve.rs`
//! check this bit-for-bit.
//!
//! # Sharding
//!
//! With [`ServeConfig::shards`] > 1 the server partitions *stream
//! ownership* — admission slots, predictor lanes, durable directories,
//! and `serve.shard{N}.*` telemetry — across shards using the
//! [`ShardRouter`] (`DESIGN.md` §16). Sharding is invisible on the wire:
//! one listener, one protocol, and a session may drive streams on any
//! mix of shards; only the owning shard's capacity, journal, and metrics
//! are touched for each stream. [`ServeConfig::max_streams`] stays the
//! fleet-wide cap, partitioned evenly across shards.
//!
//! # Backpressure
//!
//! The server never buffers without bound. Streams beyond the owning
//! shard's slice of [`ServeConfig::max_streams`] are refused
//! (`TooManyStreams`), batches beyond [`ServeConfig::max_batch_frames`]
//! are refused (`BatchTooLarge`), and batches that do not fit the
//! per-stream queue are refused whole (`QueueFull`) with a
//! `retry_after_ms` hint — the client keeps the data and retries; the
//! server's memory stays bounded by its configuration.

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use eventhit_core::faults::FaultConfig;
use eventhit_core::resilient::{DegradationTag, ResilienceConfig, ResilientCiClient};
use eventhit_core::streaming::{HorizonDecision, OnlinePredictor};
use eventhit_core::SamplingPolicy;
use eventhit_core::{ConformalState, EventHit};
use eventhit_durable::{
    decision_fingerprint, replay, DurableError, DurableStore, LaneSnapshot, SessionEvent, Snapshot,
};
use eventhit_parallel::Pool;
use eventhit_telemetry::{SlowDecision, Telemetry};
use eventhit_video::detector::StageModel;

use crate::admission::{AdmissionController, FrameQueue, ServeTotals, SlotGuard};
use crate::convert::decision_to_wire;
use crate::protocol::{
    read_message, write_message, Message, RejectCode, StreamSummary, WireCounter, WireDecision,
    WireSeries, WireSlo, WireWindow, PROTOCOL_MAJOR, PROTOCOL_MINOR,
};
use crate::router::ShardRouter;

/// Per-stream resilient-CI wiring: when set, every decision's relayed
/// frames are submitted through a [`ResilientCiClient`] (seeded
/// `seed + stream_id`, so streams draw independent fault sequences) and
/// the resulting degradation tag travels to the client on the wire.
#[derive(Debug, Clone)]
pub struct ResilienceSpec {
    /// Fault profile of the simulated CI channel.
    pub faults: FaultConfig,
    /// Retry / breaker / degradation policy.
    pub resilience: ResilienceConfig,
    /// CI service throughput rating, frames per second.
    pub ci_fps: f64,
    /// Stream frame rate, used to convert anchors to submission times.
    pub stream_fps: f64,
    /// Base seed; stream `s` uses `seed + s`.
    pub seed: u64,
}

/// Durable-serving wiring: where the session log lives and how often the
/// hub checkpoints (see `DESIGN.md` §14).
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// Session directory: log, snapshots, and persisted reloads. A
    /// single-shard server uses `dir` itself (the PR 7 layout); a
    /// sharded server journals each shard under `dir/shard-{i:03}`, so
    /// shards commit and recover independently.
    pub dir: PathBuf,
    /// Snapshot after this many new log events (0 disables snapshots;
    /// recovery then replays the whole log).
    pub snapshot_every: u64,
}

impl DurableOptions {
    /// Durable serving in `dir` with the default snapshot cadence (256
    /// events).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurableOptions {
            dir: dir.into(),
            snapshot_every: 256,
        }
    }
}

/// Server configuration: bind address plus the admission limits echoed to
/// every client in `HelloAck`.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (`"127.0.0.1:0"` picks a free port).
    pub addr: String,
    /// Number of shards stream ownership is partitioned across (minimum
    /// 1). Shard membership is decided by the deterministic
    /// [`ShardRouter`], so it is stable across sessions and restarts;
    /// a durable directory must keep the shard count it was created
    /// with, or per-shard journals end up on the wrong shard.
    pub shards: u32,
    /// Workers per shard pool when serving with more than one shard
    /// (`0` resolves the ambient `eventhit-parallel` worker count).
    /// Ignored at `shards == 1`, where the caller's pool serves alone.
    pub workers_per_shard: usize,
    /// Cap on concurrently open streams, across all sessions and shards.
    /// Partitioned evenly across shards (shard `i` gets
    /// `max_streams / shards`, the first `max_streams % shards` shards
    /// one more); a stream is refused when its *owning* shard is full,
    /// even if other shards still have room.
    pub max_streams: u32,
    /// Largest accepted `SubmitFrames` batch, in frames.
    pub max_batch_frames: u32,
    /// Per-stream ingest-queue bound, in frames.
    pub max_queue_frames: u32,
    /// Backpressure hint attached to `TooManyStreams` / `QueueFull`
    /// rejections, in milliseconds.
    pub retry_after_ms: u32,
    /// Optional resilient-CI wiring (see [`ResilienceSpec`]). `None`
    /// serves every decision untagged, which is what the determinism
    /// soak test uses.
    pub resilience: Option<ResilienceSpec>,
    /// Optional durable-serving wiring (see [`DurableOptions`]). When
    /// set, every state-changing request is committed to the session log
    /// before it is acknowledged, lanes survive disconnects and crashes,
    /// and clients re-attach with `Resume`. Mutually exclusive with
    /// `resilience` — the resilient CI client carries breaker state the
    /// snapshots do not capture.
    pub durable: Option<DurableOptions>,
    /// When set, the bounded slow-decision log is rewritten to this file
    /// as JSONL (one `{"type":"slow",…}` object per retained decision,
    /// slowest first) at the end of every session. Requires an enabled
    /// telemetry recorder (see [`Server::bind_with_telemetry`]).
    pub slow_log: Option<PathBuf>,
    /// Content-adaptive sampling applied to every admitted stream (see
    /// [`SamplingPolicy`]). Gated frames are acknowledged and counted
    /// (`stream.frames_skipped`) but not encoded; decisions stay
    /// bit-identical across worker counts under every policy. Mutually
    /// exclusive with `durable` for non-`Fixed` policies — gate and
    /// window state is not captured by snapshots.
    pub sampling: SamplingPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            shards: 1,
            workers_per_shard: 0,
            max_streams: 16,
            max_batch_frames: 4096,
            max_queue_frames: 8192,
            retry_after_ms: 100,
            resilience: None,
            durable: None,
            slow_log: None,
            sampling: SamplingPolicy::Fixed,
        }
    }
}

/// Builds one lane's predictor for an admitted stream id. The factory is
/// called once per `OpenStream`; cloning one trained model and conformal
/// state per lane (as `run_lanes` does) keeps lanes independent.
pub type LaneFactory = dyn Fn(u32) -> OnlinePredictor + Send + Sync;

/// One admitted stream. Non-durable lanes live inside their session and
/// always hold their admission [`SlotGuard`]; durable lanes live in the
/// [`DurableHub`] and hold a guard exactly while a live session drives
/// them — a parked lane (`slot: None`) has released its slot and waits
/// for a `Resume` to claim a fresh one.
struct Lane {
    predictor: OnlinePredictor,
    queue: FrameQueue,
    resilient: Option<ResilientCiClient>,
    stream_fps: f64,
    frames: u64,
    decisions: u64,
    slot: Option<SlotGuard>,
}

/// The active hot-reload: weights, refitted conformal state, and the
/// fingerprint the pair is persisted under.
struct ActiveReload {
    model: EventHit,
    state: ConformalState,
    fingerprint: u64,
}

/// Global durable state, one per server. A single mutex serializes every
/// state-changing request across sessions — appends hit the log in
/// application order, which is exactly the order replay re-applies them.
struct DurableHub {
    store: DurableStore,
    lanes: BTreeMap<u32, Lane>,
    reload: Option<ActiveReload>,
    snapshot_every: u64,
    events_at_last_snapshot: u64,
}

impl DurableHub {
    /// Checkpoints the hub if enough events accumulated since the last
    /// snapshot. Lane iteration order (ascending stream id) makes the
    /// snapshot bytes deterministic for a given state. Cadence checks
    /// that decide not to snapshot count under `durable.snapshot_skips`.
    fn maybe_snapshot(&mut self, t: &Telemetry) -> Result<(), DurableError> {
        if self.snapshot_every == 0 {
            return Ok(());
        }
        let events = self.store.events_applied();
        if events - self.events_at_last_snapshot < self.snapshot_every {
            t.add("durable.snapshot_skips", 1);
            return Ok(());
        }
        let lanes = self
            .lanes
            .iter()
            .map(|(&stream_id, lane)| {
                let st = lane.predictor.export_state();
                LaneSnapshot {
                    stream_id,
                    dim: lane.predictor.input_dim() as u32,
                    frames: lane.frames,
                    decisions: lane.decisions,
                    frames_seen: st.frames_seen,
                    countdown: st.countdown,
                    state_fingerprint: st.fingerprint(),
                    rows: st.rows,
                }
            })
            .collect();
        self.store.write_snapshot(&Snapshot {
            events_applied: events,
            reload_fingerprint: self.reload.as_ref().map(|r| r.fingerprint),
            lanes,
        })?;
        self.events_at_last_snapshot = events;
        Ok(())
    }
}

/// Interned per-shard metric names. Telemetry metric names are
/// `&'static str`; shard-scoped names are built once per `(shard, metric)`
/// pair and leaked through a global intern table, so repeated binds (test
/// suites construct many servers) reuse the same allocation instead of
/// leaking per bind.
fn intern_metric(name: String) -> &'static str {
    static TABLE: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let mut table = TABLE
        .get_or_init(|| Mutex::new(BTreeSet::new()))
        .lock()
        .expect("metric intern table poisoned");
    if let Some(&existing) = table.get(name.as_str()) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.into_boxed_str());
    table.insert(leaked);
    leaked
}

/// The `serve.shard{N}.*` telemetry scope for one shard.
#[derive(Clone, Copy)]
struct ShardNames {
    active_streams: &'static str,
    streams_opened: &'static str,
    frames: &'static str,
    decisions: &'static str,
    rejected: &'static str,
}

impl ShardNames {
    fn new(shard: u32) -> Self {
        let name = |metric: &str| intern_metric(format!("serve.shard{shard}.{metric}"));
        ShardNames {
            active_streams: name("active_streams"),
            streams_opened: name("streams_opened"),
            frames: name("frames"),
            decisions: name("decisions"),
            rejected: name("rejected"),
        }
    }
}

/// One shard: the unit of stream ownership. Every stream id resolves to
/// exactly one shard (via the [`ShardRouter`]), and only that shard's
/// admission slice, durable journal, and telemetry scope are touched on
/// its behalf. Shards share the listener and the wire — sessions are not
/// shard-bound.
struct Shard {
    admission: Arc<AdmissionController>,
    durable: Option<Mutex<DurableHub>>,
    names: ShardNames,
}

struct Shared {
    listener: TcpListener,
    cfg: ServeConfig,
    factory: Box<LaneFactory>,
    router: ShardRouter,
    shards: Vec<Shard>,
    totals: Arc<ServeTotals>,
    telemetry: Arc<Telemetry>,
}

impl Shared {
    /// The shard owning `stream_id`.
    fn shard_of(&self, stream_id: u32) -> &Shard {
        &self.shards[self.router.route(stream_id) as usize]
    }

    /// True iff the server journals durably (all shards do, or none).
    fn is_durable(&self) -> bool {
        self.shards[0].durable.is_some()
    }
}

/// Maps a durable-layer failure onto the session's `io::Result` plumbing.
fn durable_io(e: DurableError) -> io::Error {
    io::Error::other(e.to_string())
}

fn lock_hub(shard: &Shard) -> MutexGuard<'_, DurableHub> {
    shard
        .durable
        .as_ref()
        .expect("durable loop requires a hub")
        .lock()
        .expect("durable hub poisoned")
}

/// Shard `i`'s slice of the fleet-wide stream cap: an even partition of
/// `max_streams` whose slices sum exactly to `max_streams`.
fn shard_cap(max_streams: u32, shards: u32, i: u32) -> u32 {
    max_streams / shards + u32::from(i < max_streams % shards)
}

/// The serving frontend. Bind once, then push session-serving work onto
/// a [`Pool`] with [`Server::serve_sessions`] or [`Server::serve_forever`].
pub struct Server {
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and prepares shared state; telemetry disabled.
    pub fn bind(cfg: ServeConfig, factory: Box<LaneFactory>) -> io::Result<Server> {
        Self::bind_with_telemetry(cfg, factory, Arc::new(Telemetry::disabled()))
    }

    /// [`Server::bind`] with a telemetry recorder: sessions, stream
    /// opens/closes, frames, decisions, rejections (labelled by reject
    /// code), an `serve.active_streams` gauge, and a `serve.session`
    /// span per connection.
    ///
    /// With an *enabled* recorder the server also runs the full
    /// observability plane (`DESIGN.md` §15): per-decision stage
    /// histograms (`serve.stage_seconds` labelled `session_read` /
    /// `queue_wait` / `durable_commit` / `reply_write`, plus the
    /// predictor's `stream.stage_seconds`), the `serve.decision_seconds`
    /// series with a registered 50 ms / 99% SLO, per-stream
    /// `serve.stream_frames` rates, trace exemplars for `SubmitTraced`
    /// batches, the bounded slow-decision log, and `durable.*` commit /
    /// snapshot / recovery instrumentation — all queryable live over the
    /// wire with `MetricsQuery`.
    pub fn bind_with_telemetry(
        cfg: ServeConfig,
        factory: Box<LaneFactory>,
        telemetry: Arc<Telemetry>,
    ) -> io::Result<Server> {
        if cfg.durable.is_some() && cfg.resilience.is_some() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "durable serving cannot be combined with resilient-CI wiring: \
                 breaker state is not captured by snapshots",
            ));
        }
        if cfg.durable.is_some() && !cfg.sampling.is_fixed() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "durable serving requires the Fixed sampling policy: \
                 gate and window state is not captured by snapshots",
            ));
        }
        if cfg.shards == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a server needs at least one shard",
            ));
        }
        let router = ShardRouter::new(cfg.shards);
        let mut shards = Vec::with_capacity(cfg.shards as usize);
        for i in 0..cfg.shards {
            // Durable recovery happens before the listener accepts
            // anything: replay each shard's log through factory-built
            // predictors and park every recovered lane until its client
            // resumes. Shards recover independently — one directory per
            // shard (the single-shard layout is `dir` itself, unchanged
            // from PR 7).
            let durable = match &cfg.durable {
                None => None,
                Some(opts) => {
                    let dir = if cfg.shards == 1 {
                        opts.dir.clone()
                    } else {
                        let d = opts.dir.join(format!("shard-{i:03}"));
                        std::fs::create_dir_all(&d)?;
                        d
                    };
                    let (store, recovery) =
                        DurableStore::open_with_telemetry(&dir, Arc::clone(&telemetry))
                            .map_err(durable_io)?;
                    let replayed = replay(&dir, &recovery, &mut |stream_id| (factory)(stream_id))
                        .map_err(durable_io)?;
                    let lanes: BTreeMap<u32, Lane> = replayed
                        .lanes
                        .into_iter()
                        .map(|(stream_id, rl)| {
                            debug_assert_eq!(
                                router.route(stream_id),
                                i,
                                "shard {i} recovered a stream it does not own; \
                                 was the directory created with a different --shards?"
                            );
                            // Telemetry attaches only after replay
                            // finished: recovery must not pollute the
                            // live stream metrics with replayed frames.
                            let mut predictor = rl.predictor;
                            predictor.set_telemetry(Arc::clone(&telemetry));
                            (
                                stream_id,
                                Lane {
                                    predictor,
                                    queue: FrameQueue::new(cfg.max_queue_frames as usize),
                                    resilient: None,
                                    stream_fps: 30.0,
                                    frames: rl.frames,
                                    decisions: rl.decisions,
                                    slot: None,
                                },
                            )
                        })
                        .collect();
                    let reload = replayed.reload.map(|r| ActiveReload {
                        model: r.model,
                        state: r.state,
                        fingerprint: r.fingerprint,
                    });
                    let events = store.events_applied();
                    Some(Mutex::new(DurableHub {
                        store,
                        lanes,
                        reload,
                        snapshot_every: opts.snapshot_every,
                        events_at_last_snapshot: events,
                    }))
                }
            };
            shards.push(Shard {
                admission: Arc::new(AdmissionController::new(shard_cap(
                    cfg.max_streams,
                    cfg.shards,
                    i,
                ))),
                durable,
                names: ShardNames::new(i),
            });
        }
        let addrs: Vec<SocketAddr> = cfg.addr.to_socket_addrs()?.collect();
        let listener = TcpListener::bind(&addrs[..])?;
        // The serving SLO the `serve.decision_seconds` series burns
        // against: p99 of decision latency under 50 ms.
        telemetry.set_slo("serve.decision_seconds", "", 0.050, 0.99);
        Ok(Server {
            shared: Arc::new(Shared {
                listener,
                cfg,
                factory,
                router,
                shards,
                totals: Arc::new(ServeTotals::new()),
                telemetry,
            }),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.shared.listener.local_addr()
    }

    /// Accepts and serves exactly `n` sessions. Returns when all `n`
    /// sessions have ended.
    ///
    /// A single-shard server multiplexes sessions onto the caller's
    /// `pool` (up to `pool.workers()` concurrently), exactly as before
    /// sharding existed. A sharded server gives every shard its own
    /// [`Pool`] of [`ServeConfig::workers_per_shard`] workers (falling
    /// back to `pool.workers()`) and deals the `n` sessions round-robin
    /// across the shard pools — total session concurrency scales with
    /// the shard count.
    pub fn serve_sessions(&self, n: usize, pool: &Pool) {
        let shared = &self.shared;
        let serve_one = |_i: usize, ()| {
            if let Ok((sock, _peer)) = shared.listener.accept() {
                serve_session(shared, sock);
            }
        };
        let shards = shared.cfg.shards as usize;
        if shards <= 1 {
            pool.run_tasks(vec![(); n], serve_one);
            return;
        }
        let shard_pool = self.shard_pool(pool.workers());
        std::thread::scope(|scope| {
            for i in 0..shards {
                let quota = n / shards + usize::from(i < n % shards);
                if quota == 0 {
                    continue;
                }
                let shard_pool = shard_pool.clone();
                let serve_one = &serve_one;
                scope.spawn(move || shard_pool.run_tasks(vec![(); quota], serve_one));
            }
        });
    }

    /// The per-shard session pool: `workers_per_shard` workers, falling
    /// back to the caller's pool width when unset.
    fn shard_pool(&self, fallback_workers: usize) -> Pool {
        let w = self.shared.cfg.workers_per_shard;
        Pool::new(if w > 0 { w } else { fallback_workers })
    }

    /// Hot-swaps the serving model mid-serve (durable servers only).
    ///
    /// The new weights and their *refitted* conformal state (see
    /// `TaskRun::state_for_model` — reusing the old state would void the
    /// coverage guarantees) are persisted beside the session log, a
    /// `ModelReloaded` event is committed, and every live lane swaps in
    /// place keeping its window and anchor cadence. Returns the weight
    /// fingerprint the reload is journaled under; replay after a crash
    /// reproduces pre- and post-reload decisions exactly.
    pub fn reload_model(&self, mut model: EventHit, state: ConformalState) -> io::Result<u64> {
        if !self.shared.is_durable() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "model hot-reload requires durable serving (the swap must be journaled)",
            ));
        }
        // Every shard journals the reload in its own log (replay of any
        // one shard's directory must be self-contained); the fingerprint
        // is a pure function of the weights, so all shards agree on it.
        let mut fingerprint = 0;
        for shard in &self.shared.shards {
            let mut hub = lock_hub(shard);
            fingerprint = hub
                .store
                .save_reload(&mut model, &state)
                .map_err(durable_io)?;
            hub.store
                .append(&SessionEvent::ModelReloaded { fingerprint })
                .map_err(durable_io)?;
            for lane in hub.lanes.values_mut() {
                lane.predictor
                    .reload_model(model.clone(), state.clone())
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
            }
            hub.reload = Some(ActiveReload {
                model: model.clone(),
                state: state.clone(),
                fingerprint,
            });
        }
        self.shared.telemetry.add("serve.model_reloads", 1);
        Ok(fingerprint)
    }

    /// Serves sessions until the process exits: every pool worker loops
    /// on accept. Intended for the `eventhit-cli serve` command; tests
    /// use [`Server::serve_sessions`] so the server can wind down.
    pub fn serve_forever(&self, pool: &Pool) {
        let shared = &self.shared;
        let accept_loop = |_i: usize, ()| loop {
            match shared.listener.accept() {
                Ok((sock, _peer)) => serve_session(shared, sock),
                Err(_) => return,
            }
        };
        let shards = shared.cfg.shards as usize;
        if shards <= 1 {
            pool.run_tasks(vec![(); pool.workers().max(1)], accept_loop);
            return;
        }
        let shard_pool = self.shard_pool(pool.workers());
        std::thread::scope(|scope| {
            for _ in 0..shards {
                let shard_pool = shard_pool.clone();
                let accept_loop = &accept_loop;
                scope.spawn(move || {
                    shard_pool.run_tasks(vec![(); shard_pool.workers().max(1)], accept_loop)
                });
            }
        });
    }
}

/// Serves one connection to completion. Any I/O error or protocol
/// violation ends the session; cleanup releases every stream slot the
/// session still holds, so lanes freed by a mid-session disconnect are
/// immediately reusable by new sessions.
fn serve_session(shared: &Shared, sock: TcpStream) {
    let t = &shared.telemetry;
    let _span = t.span("serve.session");
    shared.totals.session_started();
    t.add("serve.sessions", 1);

    let outcome = if shared.is_durable() {
        let mut owned: BTreeSet<u32> = BTreeSet::new();
        let outcome = durable_session_loop(shared, &sock, &mut owned);
        // Durable cleanup: lanes survive the session. Park whatever the
        // session still drives — dropping the slot guard releases the
        // admission slot and refreshes the gauges — so a future `Resume`
        // (possibly after a server restart) picks up exactly where this
        // connection stopped. Each stream parks in its owning shard's
        // hub.
        for id in &owned {
            let mut hub = lock_hub(shared.shard_of(*id));
            if let Some(lane) = hub.lanes.get_mut(id) {
                lane.slot = None;
            }
            t.add("serve.streams_parked", 1);
        }
        outcome
    } else {
        let mut lanes: BTreeMap<u32, Lane> = BTreeMap::new();
        let outcome = session_loop(shared, &sock, &mut lanes);
        // Cleanup: dropping the lanes drops their slot guards, returning
        // every stream the session still held to the pool.
        if !lanes.is_empty() {
            t.add("serve.streams_aborted", lanes.len() as u64);
        }
        drop(lanes);
        outcome
    };
    if outcome.is_err() {
        t.add("serve.session_errors", 1);
    }
    // The slow-decision export is rewritten whole at every session end:
    // the in-memory log is bounded and totally ordered, so the file is a
    // pure function of the decisions served so far.
    if let Some(path) = &shared.cfg.slow_log {
        if t.is_enabled() && std::fs::write(path, t.snapshot().slow_jsonl()).is_err() {
            t.add("serve.slow_log_errors", 1);
        }
    }
}

/// Performs the `Hello`/`HelloAck` handshake. Returns `Ok(false)` when
/// the session should end without entering the request loop (immediate
/// EOF, or a version rejection already written).
fn handshake(shared: &Shared, chan: &mut &TcpStream) -> io::Result<bool> {
    let cfg = &shared.cfg;
    let t = &shared.telemetry;
    let hello = match read_message(chan)? {
        Some(m) => m,
        None => return Ok(false), // connected and left; fine
    };
    match hello {
        Message::Hello { major, minor } if major == PROTOCOL_MAJOR => {
            write_message(
                chan,
                // Minor negotiation: run at min(client, server).
                &Message::HelloAck {
                    major: PROTOCOL_MAJOR,
                    minor: minor.min(PROTOCOL_MINOR),
                    max_streams: cfg.max_streams,
                    max_batch_frames: cfg.max_batch_frames,
                    max_queue_frames: cfg.max_queue_frames,
                },
            )?;
            Ok(true)
        }
        Message::Hello { major, .. } => {
            reject(
                chan,
                t,
                RejectCode::VersionUnsupported,
                0,
                format!("server speaks major {PROTOCOL_MAJOR}, client sent {major}"),
            )?;
            Ok(false)
        }
        other => {
            reject(
                chan,
                t,
                RejectCode::NotReady,
                0,
                format!("expected Hello, got tag 0x{:02x}", other.tag()),
            )?;
            Ok(false)
        }
    }
}

/// Runs the handshake and then the request loop. `Ok(())` is a clean
/// disconnect (EOF between frames); `Err` is an I/O failure or a fatal
/// protocol violation after which the socket is abandoned.
fn session_loop(
    shared: &Shared,
    sock: &TcpStream,
    lanes: &mut BTreeMap<u32, Lane>,
) -> io::Result<()> {
    let cfg = &shared.cfg;
    let t = &shared.telemetry;
    let mut chan = sock;

    if !handshake(shared, &mut chan)? {
        return Ok(());
    }

    // --- Request loop.
    loop {
        let read_start = t.now();
        let msg = match read_message(&mut chan) {
            Ok(Some(m)) => m,
            Ok(None) => return Ok(()), // clean disconnect
            Err(e) => return Err(e),
        };
        observe_stage(t, "session_read", t.now() - read_start, None);
        match msg {
            Message::OpenStream { stream_id } => {
                if lanes.contains_key(&stream_id) {
                    reject(
                        &mut chan,
                        t,
                        RejectCode::DuplicateStream,
                        0,
                        format!("stream {stream_id} is already open in this session"),
                    )?;
                    continue;
                }
                let shard = shared.shard_of(stream_id);
                let Some(slot) = SlotGuard::claim(
                    &shard.admission,
                    &shared.totals,
                    t,
                    shard.names.active_streams,
                ) else {
                    t.add(shard.names.rejected, 1);
                    reject(
                        &mut chan,
                        t,
                        RejectCode::TooManyStreams,
                        cfg.retry_after_ms,
                        format!(
                            "at capacity: {} of {} streams open on stream {stream_id}'s shard",
                            shard.admission.active(),
                            shard.admission.max_streams()
                        ),
                    )?;
                    continue;
                };
                // From here on the guard owns the slot: any early return
                // (like a resilient-wiring failure) releases it.
                let mut predictor = (shared.factory)(stream_id);
                predictor.set_telemetry(Arc::clone(t));
                predictor.set_policy(cfg.sampling.clone());
                let resilient = match &cfg.resilience {
                    None => None,
                    Some(spec) => {
                        let client = ResilientCiClient::new(
                            spec.faults.clone(),
                            spec.resilience.clone(),
                            StageModel::new("ci", spec.ci_fps),
                            spec.seed.wrapping_add(stream_id as u64),
                        )
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
                        Some(client)
                    }
                };
                lanes.insert(
                    stream_id,
                    Lane {
                        predictor,
                        queue: FrameQueue::new(cfg.max_queue_frames as usize),
                        resilient,
                        stream_fps: cfg
                            .resilience
                            .as_ref()
                            .map(|s| s.stream_fps)
                            .unwrap_or(30.0),
                        frames: 0,
                        decisions: 0,
                        slot: Some(slot),
                    },
                );
                t.add("serve.streams_opened", 1);
                t.add(shard.names.streams_opened, 1);
                write_message(&mut chan, &Message::StreamOpened { stream_id })?;
            }

            Message::SubmitFrames {
                stream_id,
                dim,
                data,
            } => {
                if !submit_plain(shared, &mut chan, lanes, None, stream_id, dim, data)? {
                    return Ok(());
                }
            }

            Message::SubmitTraced {
                trace_id,
                stream_id,
                dim,
                data,
            } => {
                if !submit_plain(
                    shared,
                    &mut chan,
                    lanes,
                    Some(trace_id),
                    stream_id,
                    dim,
                    data,
                )? {
                    return Ok(());
                }
            }

            Message::CloseStream { stream_id } => {
                let Some(lane) = lanes.remove(&stream_id) else {
                    reject(
                        &mut chan,
                        t,
                        RejectCode::UnknownStream,
                        0,
                        format!("stream {stream_id} is not open"),
                    )?;
                    continue;
                };
                t.add("serve.streams_closed", 1);
                write_message(
                    &mut chan,
                    &Message::StreamClosed {
                        stream_id,
                        summary: StreamSummary {
                            frames: lane.frames,
                            decisions: lane.decisions,
                        },
                    },
                )?;
            }

            Message::Health => {
                let (sessions, frames, decisions) = shared.totals.totals();
                write_message(
                    &mut chan,
                    &Message::HealthReport {
                        active_streams: shared.totals.active(),
                        sessions,
                        frames,
                        decisions,
                    },
                )?;
            }

            Message::TelemetryQuery => {
                let jsonl = if t.is_enabled() {
                    t.snapshot().to_jsonl()
                } else {
                    String::new()
                };
                write_message(&mut chan, &Message::TelemetryReport { jsonl })?;
            }

            Message::MetricsQuery => {
                write_message(&mut chan, &metrics_reply(t))?;
            }

            other => {
                // Server-bound sessions must not receive server-to-client
                // messages (or a second Hello); that is a fatal violation.
                reject(
                    &mut chan,
                    t,
                    RejectCode::Malformed,
                    0,
                    format!("unexpected message tag 0x{:02x}", other.tag()),
                )?;
                return Ok(());
            }
        }
    }
}

/// The request loop for durable servers. Lanes live in the global
/// [`DurableHub`] (they must survive the session); this session drives
/// the subset in `owned`. Every state change is appended to the log
/// *before* the reply is written, so anything a client ever observed is
/// recoverable after a crash.
fn durable_session_loop(
    shared: &Shared,
    sock: &TcpStream,
    owned: &mut BTreeSet<u32>,
) -> io::Result<()> {
    let cfg = &shared.cfg;
    let t = &shared.telemetry;
    let mut chan = sock;

    if !handshake(shared, &mut chan)? {
        return Ok(());
    }

    loop {
        let read_start = t.now();
        let msg = match read_message(&mut chan) {
            Ok(Some(m)) => m,
            Ok(None) => return Ok(()), // clean disconnect; lanes get parked
            Err(e) => return Err(e),
        };
        observe_stage(t, "session_read", t.now() - read_start, None);
        match msg {
            Message::OpenStream { stream_id } => {
                let shard = shared.shard_of(stream_id);
                let mut hub = lock_hub(shard);
                if hub.lanes.contains_key(&stream_id) {
                    // Durable ids are global: the stream exists (maybe
                    // parked by a dead session). Opening would fork its
                    // history; the client must Resume instead.
                    drop(hub);
                    reject(
                        &mut chan,
                        t,
                        RejectCode::DuplicateStream,
                        0,
                        format!("stream {stream_id} exists in durable state; send Resume"),
                    )?;
                    continue;
                }
                let Some(slot) = SlotGuard::claim(
                    &shard.admission,
                    &shared.totals,
                    t,
                    shard.names.active_streams,
                ) else {
                    drop(hub);
                    t.add(shard.names.rejected, 1);
                    reject(
                        &mut chan,
                        t,
                        RejectCode::TooManyStreams,
                        cfg.retry_after_ms,
                        format!(
                            "at capacity: {} of {} streams open on stream {stream_id}'s shard",
                            shard.admission.active(),
                            shard.admission.max_streams()
                        ),
                    )?;
                    continue;
                };
                let mut predictor = (shared.factory)(stream_id);
                if let Some(r) = &hub.reload {
                    predictor
                        .reload_model(r.model.clone(), r.state.clone())
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                }
                predictor.set_telemetry(Arc::clone(t));
                let dim = predictor.input_dim() as u32;
                hub.store
                    .append(&SessionEvent::StreamAdmitted { stream_id, dim })
                    .map_err(durable_io)?;
                hub.lanes.insert(
                    stream_id,
                    Lane {
                        predictor,
                        queue: FrameQueue::new(cfg.max_queue_frames as usize),
                        resilient: None,
                        stream_fps: 30.0,
                        frames: 0,
                        decisions: 0,
                        slot: Some(slot),
                    },
                );
                drop(hub);
                owned.insert(stream_id);
                t.add("serve.streams_opened", 1);
                t.add(shard.names.streams_opened, 1);
                write_message(&mut chan, &Message::StreamOpened { stream_id })?;
            }

            Message::Resume {
                stream_id,
                last_seq,
            } => {
                let shard = shared.shard_of(stream_id);
                let mut hub = lock_hub(shard);
                let Some(lane) = hub.lanes.get_mut(&stream_id) else {
                    drop(hub);
                    reject(
                        &mut chan,
                        t,
                        RejectCode::UnknownStream,
                        0,
                        format!("stream {stream_id} has no durable state"),
                    )?;
                    continue;
                };
                if lane.slot.is_some() {
                    drop(hub);
                    reject(
                        &mut chan,
                        t,
                        RejectCode::DuplicateStream,
                        0,
                        format!("stream {stream_id} is attached to a live session"),
                    )?;
                    continue;
                }
                if last_seq > lane.frames {
                    // Fatal: the client claims acknowledgements the log
                    // never committed — it is talking to the wrong server
                    // or the wrong directory.
                    let have = lane.frames;
                    drop(hub);
                    reject(
                        &mut chan,
                        t,
                        RejectCode::Malformed,
                        0,
                        format!(
                            "stream {stream_id}: client claims {last_seq} accepted \
                             frames, durable state holds {have}"
                        ),
                    )?;
                    return Ok(());
                }
                let Some(slot) = SlotGuard::claim(
                    &shard.admission,
                    &shared.totals,
                    t,
                    shard.names.active_streams,
                ) else {
                    drop(hub);
                    t.add(shard.names.rejected, 1);
                    reject(
                        &mut chan,
                        t,
                        RejectCode::TooManyStreams,
                        cfg.retry_after_ms,
                        format!(
                            "at capacity: {} of {} streams open on stream {stream_id}'s shard",
                            shard.admission.active(),
                            shard.admission.max_streams()
                        ),
                    )?;
                    continue;
                };
                lane.slot = Some(slot);
                let next_seq = lane.frames;
                drop(hub);
                owned.insert(stream_id);
                t.add("serve.streams_resumed", 1);
                write_message(
                    &mut chan,
                    &Message::Resumed {
                        stream_id,
                        next_seq,
                    },
                )?;
            }

            Message::SubmitFrames {
                stream_id,
                dim,
                data,
            } => {
                if !submit_durable(shared, &mut chan, owned, None, stream_id, dim, data)? {
                    return Ok(());
                }
            }

            Message::SubmitTraced {
                trace_id,
                stream_id,
                dim,
                data,
            } => {
                if !submit_durable(
                    shared,
                    &mut chan,
                    owned,
                    Some(trace_id),
                    stream_id,
                    dim,
                    data,
                )? {
                    return Ok(());
                }
            }

            Message::CloseStream { stream_id } => {
                if !owned.contains(&stream_id) {
                    reject(
                        &mut chan,
                        t,
                        RejectCode::UnknownStream,
                        0,
                        format!("stream {stream_id} is not open in this session"),
                    )?;
                    continue;
                }
                let mut hub = lock_hub(shared.shard_of(stream_id));
                hub.store
                    .append(&SessionEvent::StreamClosed { stream_id })
                    .map_err(durable_io)?;
                let lane = hub
                    .lanes
                    .remove(&stream_id)
                    .expect("owned streams exist in the hub");
                hub.maybe_snapshot(t).map_err(durable_io)?;
                drop(hub);
                owned.remove(&stream_id);
                t.add("serve.streams_closed", 1);
                write_message(
                    &mut chan,
                    &Message::StreamClosed {
                        stream_id,
                        summary: StreamSummary {
                            frames: lane.frames,
                            decisions: lane.decisions,
                        },
                    },
                )?;
            }

            Message::Health => {
                let (sessions, frames, decisions) = shared.totals.totals();
                write_message(
                    &mut chan,
                    &Message::HealthReport {
                        active_streams: shared.totals.active(),
                        sessions,
                        frames,
                        decisions,
                    },
                )?;
            }

            Message::TelemetryQuery => {
                let jsonl = if t.is_enabled() {
                    t.snapshot().to_jsonl()
                } else {
                    String::new()
                };
                write_message(&mut chan, &Message::TelemetryReport { jsonl })?;
            }

            Message::MetricsQuery => {
                write_message(&mut chan, &metrics_reply(t))?;
            }

            other => {
                reject(
                    &mut chan,
                    t,
                    RejectCode::Malformed,
                    0,
                    format!("unexpected message tag 0x{:02x}", other.tag()),
                )?;
                return Ok(());
            }
        }
    }
}

impl Lane {
    /// Feeds one frame through the lane's predictor; with resilient
    /// wiring, relayed segments are submitted through the CI client and
    /// the submission's degradation tag replaces the decision's.
    fn push(&mut self, row: Vec<f32>) -> Option<eventhit_core::streaming::HorizonDecision> {
        match &mut self.resilient {
            None => self.predictor.push_frame(row),
            Some(client) => {
                let mut d = self
                    .predictor
                    .push_frame_resilient(row, client, self.stream_fps)?;
                if d.degradation == DegradationTag::None {
                    let relayed: u64 = d
                        .segments()
                        .iter()
                        .map(|&(_, s, e)| e.saturating_sub(s) + 1)
                        .sum();
                    if relayed > 0 {
                        let now = d.anchor as f64 / self.stream_fps.max(f64::MIN_POSITIVE);
                        d.degradation = client.submit(relayed, now).tag();
                    }
                }
                Some(d)
            }
        }
    }
}

/// Writes a `Rejected` reply and counts it under `serve.rejected` with
/// the code's stable label.
fn reject(
    io: &mut impl io::Write,
    t: &Telemetry,
    code: RejectCode,
    retry_after_ms: u32,
    detail: String,
) -> io::Result<()> {
    t.add_labeled("serve.rejected", code.label(), 1);
    write_message(
        io,
        &Message::Rejected {
            code,
            retry_after_ms,
            detail,
        },
    )
}

/// Records one `serve.stage_seconds` sample, attaching the batch's trace
/// id as a histogram exemplar when the request carried one.
fn observe_stage(t: &Telemetry, stage: &'static str, seconds: f64, trace: Option<u64>) {
    match trace {
        Some(id) => t.observe_traced("serve.stage_seconds", stage, seconds, id),
        None => t.observe_labeled("serve.stage_seconds", stage, seconds),
    }
}

/// Drains everything queued on `lane` through its predictor with the
/// batch's trace attached, so the predictor's inference / conformal
/// stage samples carry the client's trace id as exemplars.
fn drain_lane(lane: &mut Lane, trace: Option<u64>) -> Vec<HorizonDecision> {
    lane.predictor.set_trace(trace);
    let mut out = Vec::new();
    while let Some(row) = lane.queue.pop() {
        if let Some(d) = lane.push(row) {
            out.push(d);
        }
    }
    lane.predictor.set_trace(None);
    out
}

/// Per-decision observability: the `serve.decision_seconds` series the
/// registered SLO burns against (traced when the batch carried a trace
/// id), plus one bounded slow-log entry per decision carrying the stage
/// breakdown.
fn record_decisions(
    t: &Telemetry,
    trace: Option<u64>,
    stream_id: u32,
    drained: &[HorizonDecision],
    elapsed: f64,
    stages: &[(&'static str, f64)],
) {
    if !t.is_enabled() {
        return;
    }
    for d in drained {
        match trace {
            Some(id) => t.observe_traced("serve.decision_seconds", "", elapsed, id),
            None => t.observe("serve.decision_seconds", elapsed),
        }
        t.slow_decision(SlowDecision {
            duration_seconds: elapsed,
            stream_id,
            anchor: d.anchor,
            trace_id: trace.unwrap_or(0),
            stages: stages.to_vec(),
        });
    }
}

/// Counts an accepted batch: the fleet-wide totals behind `Health`, the
/// global serve counters, the owning shard's `serve.shard{N}.*` scope,
/// and the per-stream `serve.stream_frames` rate series.
fn count_batch(shared: &Shared, stream_id: u32, rows: usize, decisions: usize) {
    let t = &shared.telemetry;
    let names = shared.shard_of(stream_id).names;
    shared.totals.add_frames(rows as u64);
    shared.totals.add_decisions(decisions as u64);
    t.add("serve.frames", rows as u64);
    t.add("serve.decisions", decisions as u64);
    t.add(names.frames, rows as u64);
    t.add(names.decisions, decisions as u64);
    if t.is_enabled() && rows > 0 {
        t.observe_labeled("serve.stream_frames", &stream_id.to_string(), rows as f64);
    }
}

/// `Decisions` or `TracedDecisions` depending on whether the submit
/// carried a trace id — traced pushes get the id echoed back verbatim.
fn decisions_reply(trace: Option<u64>, stream_id: u32, decisions: Vec<WireDecision>) -> Message {
    match trace {
        Some(trace_id) => Message::TracedDecisions {
            trace_id,
            stream_id,
            decisions,
        },
        None => Message::Decisions {
            stream_id,
            decisions,
        },
    }
}

/// Builds a `MetricsReply` from the live recorder: every counter, the
/// windowed time-series ring behind every histogram, and the registered
/// SLOs, all in deterministic `(name, label)` order.
fn metrics_reply(t: &Telemetry) -> Message {
    let snap = t.snapshot();
    Message::MetricsReply {
        clock_now: t.now(),
        window_secs: snap.window_secs,
        counters: snap
            .counters
            .iter()
            .map(|(name, label, value)| WireCounter {
                name: name.clone(),
                label: label.clone(),
                value: *value,
            })
            .collect(),
        series: snap
            .windows
            .iter()
            .map(|(name, label, ws)| WireSeries {
                name: name.clone(),
                label: label.clone(),
                windows: ws
                    .iter()
                    .map(|w| WireWindow {
                        index: w.index,
                        count: w.count,
                        sum: w.sum,
                        p50: w.p50,
                        p99: w.p99,
                    })
                    .collect(),
            })
            .collect(),
        slos: snap
            .slos
            .iter()
            .map(|(name, label, s)| WireSlo {
                name: name.clone(),
                label: label.clone(),
                threshold: s.threshold,
                objective: s.objective,
                total: s.total,
                violations: s.violations,
            })
            .collect(),
    }
}

/// Shared `SubmitFrames` / `SubmitTraced` handling for non-durable
/// sessions: admission checks, the synchronous drain with stage timing,
/// and the (traced) decisions reply. `Ok(false)` means the violation was
/// fatal and the session must end.
#[allow(clippy::too_many_arguments)]
fn submit_plain(
    shared: &Shared,
    chan: &mut &TcpStream,
    lanes: &mut BTreeMap<u32, Lane>,
    trace: Option<u64>,
    stream_id: u32,
    dim: u32,
    data: Vec<f32>,
) -> io::Result<bool> {
    let cfg = &shared.cfg;
    let t = &shared.telemetry;
    let batch_start = t.now();
    let Some(lane) = lanes.get_mut(&stream_id) else {
        reject(
            chan,
            t,
            RejectCode::UnknownStream,
            0,
            format!("stream {stream_id} is not open"),
        )?;
        return Ok(true);
    };
    let expected = lane.predictor.input_dim() as u32;
    if dim != expected {
        // Fatal: the peer disagrees about the feature space.
        reject(
            chan,
            t,
            RejectCode::Malformed,
            0,
            format!("stream {stream_id} expects dim {expected}, got {dim}"),
        )?;
        return Ok(false);
    }
    let rows = if dim == 0 {
        0
    } else {
        data.len() / dim as usize
    };
    if rows as u32 > cfg.max_batch_frames {
        reject(
            chan,
            t,
            RejectCode::BatchTooLarge,
            0,
            format!(
                "batch of {rows} frames exceeds the {} cap; split it",
                cfg.max_batch_frames
            ),
        )?;
        return Ok(true);
    }
    if rows > lane.queue.free() {
        reject(
            chan,
            t,
            RejectCode::QueueFull,
            cfg.retry_after_ms,
            format!(
                "stream {stream_id} queue has {} of {} frames free",
                lane.queue.free(),
                cfg.max_queue_frames
            ),
        )?;
        return Ok(true);
    }
    let batch: Vec<Vec<f32>> = data
        .chunks(dim.max(1) as usize)
        .map(<[f32]>::to_vec)
        .collect();
    lane.queue
        .try_enqueue(batch)
        .expect("free space was checked");
    let enqueued_at = t.now();
    let drain_start = t.now();
    let drained = drain_lane(lane, trace);
    let drained_at = t.now();
    observe_stage(t, "queue_wait", drain_start - enqueued_at, trace);
    lane.frames += rows as u64;
    lane.decisions += drained.len() as u64;
    let decisions: Vec<WireDecision> = drained.iter().map(decision_to_wire).collect();
    count_batch(shared, stream_id, rows, decisions.len());
    record_decisions(
        t,
        trace,
        stream_id,
        &drained,
        drained_at - batch_start,
        &[
            ("queue_wait", drain_start - enqueued_at),
            ("drain", drained_at - drain_start),
        ],
    );
    let write_start = t.now();
    write_message(chan, &decisions_reply(trace, stream_id, decisions))?;
    observe_stage(t, "reply_write", t.now() - write_start, trace);
    Ok(true)
}

/// Shared `SubmitFrames` / `SubmitTraced` handling for durable sessions:
/// frames are committed to the session log *before* they are fed, every
/// emitted decision is journaled, and the journaling work is recorded
/// under the `durable_commit` stage. `Ok(false)` ends the session.
#[allow(clippy::too_many_arguments)]
fn submit_durable(
    shared: &Shared,
    chan: &mut &TcpStream,
    owned: &BTreeSet<u32>,
    trace: Option<u64>,
    stream_id: u32,
    dim: u32,
    data: Vec<f32>,
) -> io::Result<bool> {
    let cfg = &shared.cfg;
    let t = &shared.telemetry;
    let batch_start = t.now();
    if !owned.contains(&stream_id) {
        reject(
            chan,
            t,
            RejectCode::UnknownStream,
            0,
            format!("stream {stream_id} is not open in this session"),
        )?;
        return Ok(true);
    }
    let mut hub = lock_hub(shared.shard_of(stream_id));
    let lane = hub
        .lanes
        .get_mut(&stream_id)
        .expect("owned streams exist in the hub");
    let expected = lane.predictor.input_dim() as u32;
    if dim != expected {
        drop(hub);
        reject(
            chan,
            t,
            RejectCode::Malformed,
            0,
            format!("stream {stream_id} expects dim {expected}, got {dim}"),
        )?;
        return Ok(false);
    }
    let rows = data.len() / dim.max(1) as usize;
    if rows as u32 > cfg.max_batch_frames {
        drop(hub);
        reject(
            chan,
            t,
            RejectCode::BatchTooLarge,
            0,
            format!(
                "batch of {rows} frames exceeds the {} cap; split it",
                cfg.max_batch_frames
            ),
        )?;
        return Ok(true);
    }
    if rows > lane.queue.free() {
        let free = lane.queue.free();
        drop(hub);
        reject(
            chan,
            t,
            RejectCode::QueueFull,
            cfg.retry_after_ms,
            format!(
                "stream {stream_id} queue has {free} of {} frames free",
                cfg.max_queue_frames
            ),
        )?;
        return Ok(true);
    }
    // Committed before fed: a crash after this append replays the batch,
    // so `next_seq` can never run behind a reply the client already saw.
    let commit_start = t.now();
    hub.store
        .append(&SessionEvent::FramesPushed {
            stream_id,
            dim,
            data: data.clone(),
        })
        .map_err(durable_io)?;
    let mut commit = t.now() - commit_start;
    let lane = hub
        .lanes
        .get_mut(&stream_id)
        .expect("owned streams exist in the hub");
    let batch: Vec<Vec<f32>> = data
        .chunks(dim.max(1) as usize)
        .map(<[f32]>::to_vec)
        .collect();
    lane.queue
        .try_enqueue(batch)
        .expect("free space was checked");
    let enqueued_at = t.now();
    let drain_start = t.now();
    let drained = drain_lane(lane, trace);
    let drained_at = t.now();
    observe_stage(t, "queue_wait", drain_start - enqueued_at, trace);
    lane.frames += rows as u64;
    lane.decisions += drained.len() as u64;
    let commit_resume = t.now();
    for d in &drained {
        hub.store
            .append(&SessionEvent::DecisionEmitted {
                stream_id,
                anchor: d.anchor,
                fingerprint: decision_fingerprint(d),
            })
            .map_err(durable_io)?;
    }
    hub.maybe_snapshot(t).map_err(durable_io)?;
    commit += t.now() - commit_resume;
    drop(hub);
    observe_stage(t, "durable_commit", commit, trace);
    let decisions: Vec<WireDecision> = drained.iter().map(decision_to_wire).collect();
    count_batch(shared, stream_id, rows, decisions.len());
    record_decisions(
        t,
        trace,
        stream_id,
        &drained,
        drained_at - batch_start + commit,
        &[
            ("queue_wait", drain_start - enqueued_at),
            ("drain", drained_at - drain_start),
            ("durable_commit", commit),
        ],
    );
    let write_start = t.now();
    write_message(chan, &decisions_reply(trace, stream_id, decisions))?;
    observe_stage(t, "reply_write", t.now() - write_start, trace);
    Ok(true)
}
