//! The TCP serving frontend: sessions multiplexed onto a [`Pool`], one
//! `OnlinePredictor` lane per admitted stream.
//!
//! # Determinism
//!
//! Each admitted stream gets its own predictor from the [`LaneFactory`]
//! and its own bounded queue — no state is shared between streams, and a
//! session drains each accepted batch through the lane synchronously
//! before replying. A stream's decision sequence is therefore a pure
//! function of its own frame sequence, exactly as in the in-process
//! `run_lanes` path, regardless of how many sessions run concurrently or
//! how many workers the pool has. The loopback soak test in
//! `tests/serve.rs` checks this bit-for-bit.
//!
//! # Backpressure
//!
//! The server never buffers without bound. Streams beyond
//! [`ServeConfig::max_streams`] are refused (`TooManyStreams`), batches
//! beyond [`ServeConfig::max_batch_frames`] are refused (`BatchTooLarge`),
//! and batches that do not fit the per-stream queue are refused whole
//! (`QueueFull`) with a `retry_after_ms` hint — the client keeps the data
//! and retries; the server's memory stays bounded by its configuration.

use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;

use eventhit_core::faults::FaultConfig;
use eventhit_core::resilient::{DegradationTag, ResilienceConfig, ResilientCiClient};
use eventhit_core::streaming::OnlinePredictor;
use eventhit_parallel::Pool;
use eventhit_telemetry::Telemetry;
use eventhit_video::detector::StageModel;

use crate::admission::{AdmissionController, FrameQueue};
use crate::convert::decision_to_wire;
use crate::protocol::{
    read_message, write_message, Message, RejectCode, StreamSummary, PROTOCOL_MAJOR, PROTOCOL_MINOR,
};

/// Per-stream resilient-CI wiring: when set, every decision's relayed
/// frames are submitted through a [`ResilientCiClient`] (seeded
/// `seed + stream_id`, so streams draw independent fault sequences) and
/// the resulting degradation tag travels to the client on the wire.
#[derive(Debug, Clone)]
pub struct ResilienceSpec {
    /// Fault profile of the simulated CI channel.
    pub faults: FaultConfig,
    /// Retry / breaker / degradation policy.
    pub resilience: ResilienceConfig,
    /// CI service throughput rating, frames per second.
    pub ci_fps: f64,
    /// Stream frame rate, used to convert anchors to submission times.
    pub stream_fps: f64,
    /// Base seed; stream `s` uses `seed + s`.
    pub seed: u64,
}

/// Server configuration: bind address plus the admission limits echoed to
/// every client in `HelloAck`.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (`"127.0.0.1:0"` picks a free port).
    pub addr: String,
    /// Cap on concurrently open streams, across all sessions.
    pub max_streams: u32,
    /// Largest accepted `SubmitFrames` batch, in frames.
    pub max_batch_frames: u32,
    /// Per-stream ingest-queue bound, in frames.
    pub max_queue_frames: u32,
    /// Backpressure hint attached to `TooManyStreams` / `QueueFull`
    /// rejections, in milliseconds.
    pub retry_after_ms: u32,
    /// Optional resilient-CI wiring (see [`ResilienceSpec`]). `None`
    /// serves every decision untagged, which is what the determinism
    /// soak test uses.
    pub resilience: Option<ResilienceSpec>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            max_streams: 16,
            max_batch_frames: 4096,
            max_queue_frames: 8192,
            retry_after_ms: 100,
            resilience: None,
        }
    }
}

/// Builds one lane's predictor for an admitted stream id. The factory is
/// called once per `OpenStream`; cloning one trained model and conformal
/// state per lane (as `run_lanes` does) keeps lanes independent.
pub type LaneFactory = dyn Fn(u32) -> OnlinePredictor + Send + Sync;

/// One admitted stream inside a session.
struct Lane {
    predictor: OnlinePredictor,
    queue: FrameQueue,
    resilient: Option<ResilientCiClient>,
    stream_fps: f64,
    frames: u64,
    decisions: u64,
}

struct Shared {
    listener: TcpListener,
    cfg: ServeConfig,
    factory: Box<LaneFactory>,
    admission: AdmissionController,
    telemetry: Arc<Telemetry>,
}

/// The serving frontend. Bind once, then push session-serving work onto
/// a [`Pool`] with [`Server::serve_sessions`] or [`Server::serve_forever`].
pub struct Server {
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and prepares shared state; telemetry disabled.
    pub fn bind(cfg: ServeConfig, factory: Box<LaneFactory>) -> io::Result<Server> {
        Self::bind_with_telemetry(cfg, factory, Arc::new(Telemetry::disabled()))
    }

    /// [`Server::bind`] with a telemetry recorder: sessions, stream
    /// opens/closes, frames, decisions, rejections (labelled by reject
    /// code), an `serve.active_streams` gauge, and a `serve.session`
    /// span per connection.
    pub fn bind_with_telemetry(
        cfg: ServeConfig,
        factory: Box<LaneFactory>,
        telemetry: Arc<Telemetry>,
    ) -> io::Result<Server> {
        let addrs: Vec<SocketAddr> = cfg.addr.to_socket_addrs()?.collect();
        let listener = TcpListener::bind(&addrs[..])?;
        let admission = AdmissionController::new(cfg.max_streams);
        Ok(Server {
            shared: Arc::new(Shared {
                listener,
                cfg,
                factory,
                admission,
                telemetry,
            }),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.shared.listener.local_addr()
    }

    /// Accepts and serves exactly `n` sessions, multiplexed onto `pool`
    /// (up to `pool.workers()` concurrently). Returns when all `n`
    /// sessions have ended.
    pub fn serve_sessions(&self, n: usize, pool: &Pool) {
        let shared = &self.shared;
        pool.run_tasks(vec![(); n], |_i, ()| {
            if let Ok((sock, _peer)) = shared.listener.accept() {
                serve_session(shared, sock);
            }
        });
    }

    /// Serves sessions until the process exits: every pool worker loops
    /// on accept. Intended for the `eventhit-cli serve` command; tests
    /// use [`Server::serve_sessions`] so the server can wind down.
    pub fn serve_forever(&self, pool: &Pool) {
        let shared = &self.shared;
        pool.run_tasks(vec![(); pool.workers().max(1)], |_i, ()| loop {
            match shared.listener.accept() {
                Ok((sock, _peer)) => serve_session(shared, sock),
                Err(_) => return,
            }
        });
    }
}

/// Serves one connection to completion. Any I/O error or protocol
/// violation ends the session; cleanup releases every stream slot the
/// session still holds, so lanes freed by a mid-session disconnect are
/// immediately reusable by new sessions.
fn serve_session(shared: &Shared, sock: TcpStream) {
    let t = &shared.telemetry;
    let _span = t.span("serve.session");
    shared.admission.session_started();
    t.add("serve.sessions", 1);

    let mut lanes: BTreeMap<u32, Lane> = BTreeMap::new();
    let outcome = session_loop(shared, &sock, &mut lanes);

    // Cleanup: whatever the session still holds goes back to the pool.
    for (_id, _lane) in lanes.iter() {
        shared.admission.release();
        t.add("serve.streams_aborted", 1);
    }
    t.gauge_set("serve.active_streams", shared.admission.active() as f64);
    if outcome.is_err() {
        t.add("serve.session_errors", 1);
    }
}

/// Runs the handshake and then the request loop. `Ok(())` is a clean
/// disconnect (EOF between frames); `Err` is an I/O failure or a fatal
/// protocol violation after which the socket is abandoned.
fn session_loop(
    shared: &Shared,
    sock: &TcpStream,
    lanes: &mut BTreeMap<u32, Lane>,
) -> io::Result<()> {
    let cfg = &shared.cfg;
    let t = &shared.telemetry;
    let mut chan = sock;

    // --- Handshake: the first frame must be a version-compatible Hello.
    let hello = match read_message(&mut chan)? {
        Some(m) => m,
        None => return Ok(()), // connected and left; fine
    };
    match hello {
        Message::Hello { major, minor } if major == PROTOCOL_MAJOR => {
            write_message(
                &mut chan,
                // Minor negotiation: run at min(client, server). With
                // PROTOCOL_MINOR = 0 the min is degenerate today, but the
                // rule must survive the first minor bump.
                #[allow(clippy::unnecessary_min_or_max)]
                &Message::HelloAck {
                    major: PROTOCOL_MAJOR,
                    minor: minor.min(PROTOCOL_MINOR),
                    max_streams: cfg.max_streams,
                    max_batch_frames: cfg.max_batch_frames,
                    max_queue_frames: cfg.max_queue_frames,
                },
            )?;
        }
        Message::Hello { major, .. } => {
            reject(
                &mut chan,
                t,
                RejectCode::VersionUnsupported,
                0,
                format!("server speaks major {PROTOCOL_MAJOR}, client sent {major}"),
            )?;
            return Ok(());
        }
        other => {
            reject(
                &mut chan,
                t,
                RejectCode::NotReady,
                0,
                format!("expected Hello, got tag 0x{:02x}", other.tag()),
            )?;
            return Ok(());
        }
    }

    // --- Request loop.
    loop {
        let msg = match read_message(&mut chan) {
            Ok(Some(m)) => m,
            Ok(None) => return Ok(()), // clean disconnect
            Err(e) => return Err(e),
        };
        match msg {
            Message::OpenStream { stream_id } => {
                if lanes.contains_key(&stream_id) {
                    reject(
                        &mut chan,
                        t,
                        RejectCode::DuplicateStream,
                        0,
                        format!("stream {stream_id} is already open in this session"),
                    )?;
                    continue;
                }
                if !shared.admission.try_admit() {
                    reject(
                        &mut chan,
                        t,
                        RejectCode::TooManyStreams,
                        cfg.retry_after_ms,
                        format!(
                            "at capacity: {} of {} streams open",
                            shared.admission.active(),
                            cfg.max_streams
                        ),
                    )?;
                    continue;
                }
                let predictor = (shared.factory)(stream_id);
                let resilient = match &cfg.resilience {
                    None => None,
                    Some(spec) => {
                        let client = ResilientCiClient::new(
                            spec.faults.clone(),
                            spec.resilience.clone(),
                            StageModel::new("ci", spec.ci_fps),
                            spec.seed.wrapping_add(stream_id as u64),
                        )
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
                        Some(client)
                    }
                };
                lanes.insert(
                    stream_id,
                    Lane {
                        predictor,
                        queue: FrameQueue::new(cfg.max_queue_frames as usize),
                        resilient,
                        stream_fps: cfg
                            .resilience
                            .as_ref()
                            .map(|s| s.stream_fps)
                            .unwrap_or(30.0),
                        frames: 0,
                        decisions: 0,
                    },
                );
                t.add("serve.streams_opened", 1);
                t.gauge_set("serve.active_streams", shared.admission.active() as f64);
                write_message(&mut chan, &Message::StreamOpened { stream_id })?;
            }

            Message::SubmitFrames {
                stream_id,
                dim,
                data,
            } => {
                let Some(lane) = lanes.get_mut(&stream_id) else {
                    reject(
                        &mut chan,
                        t,
                        RejectCode::UnknownStream,
                        0,
                        format!("stream {stream_id} is not open"),
                    )?;
                    continue;
                };
                let expected = lane.predictor.input_dim() as u32;
                if dim != expected {
                    // Fatal: the peer disagrees about the feature space.
                    reject(
                        &mut chan,
                        t,
                        RejectCode::Malformed,
                        0,
                        format!("stream {stream_id} expects dim {expected}, got {dim}"),
                    )?;
                    return Ok(());
                }
                let rows = if dim == 0 {
                    0
                } else {
                    data.len() / dim as usize
                };
                if rows as u32 > cfg.max_batch_frames {
                    reject(
                        &mut chan,
                        t,
                        RejectCode::BatchTooLarge,
                        0,
                        format!(
                            "batch of {rows} frames exceeds the {} cap; split it",
                            cfg.max_batch_frames
                        ),
                    )?;
                    continue;
                }
                if rows > lane.queue.free() {
                    reject(
                        &mut chan,
                        t,
                        RejectCode::QueueFull,
                        cfg.retry_after_ms,
                        format!(
                            "stream {stream_id} queue has {} of {} frames free",
                            lane.queue.free(),
                            cfg.max_queue_frames
                        ),
                    )?;
                    continue;
                }
                let batch: Vec<Vec<f32>> = data
                    .chunks(dim.max(1) as usize)
                    .map(<[f32]>::to_vec)
                    .collect();
                lane.queue
                    .try_enqueue(batch)
                    .expect("free space was checked");
                let mut decisions = Vec::new();
                while let Some(row) = lane.queue.pop() {
                    if let Some(d) = lane.push(row) {
                        decisions.push(decision_to_wire(&d));
                    }
                }
                lane.frames += rows as u64;
                lane.decisions += decisions.len() as u64;
                shared.admission.add_frames(rows as u64);
                shared.admission.add_decisions(decisions.len() as u64);
                t.add("serve.frames", rows as u64);
                t.add("serve.decisions", decisions.len() as u64);
                write_message(
                    &mut chan,
                    &Message::Decisions {
                        stream_id,
                        decisions,
                    },
                )?;
            }

            Message::CloseStream { stream_id } => {
                let Some(lane) = lanes.remove(&stream_id) else {
                    reject(
                        &mut chan,
                        t,
                        RejectCode::UnknownStream,
                        0,
                        format!("stream {stream_id} is not open"),
                    )?;
                    continue;
                };
                shared.admission.release();
                t.add("serve.streams_closed", 1);
                t.gauge_set("serve.active_streams", shared.admission.active() as f64);
                write_message(
                    &mut chan,
                    &Message::StreamClosed {
                        stream_id,
                        summary: StreamSummary {
                            frames: lane.frames,
                            decisions: lane.decisions,
                        },
                    },
                )?;
            }

            Message::Health => {
                let (sessions, frames, decisions) = shared.admission.totals();
                write_message(
                    &mut chan,
                    &Message::HealthReport {
                        active_streams: shared.admission.active(),
                        sessions,
                        frames,
                        decisions,
                    },
                )?;
            }

            Message::TelemetryQuery => {
                let jsonl = if t.is_enabled() {
                    t.snapshot().to_jsonl()
                } else {
                    String::new()
                };
                write_message(&mut chan, &Message::TelemetryReport { jsonl })?;
            }

            other => {
                // Server-bound sessions must not receive server-to-client
                // messages (or a second Hello); that is a fatal violation.
                reject(
                    &mut chan,
                    t,
                    RejectCode::Malformed,
                    0,
                    format!("unexpected message tag 0x{:02x}", other.tag()),
                )?;
                return Ok(());
            }
        }
    }
}

impl Lane {
    /// Feeds one frame through the lane's predictor; with resilient
    /// wiring, relayed segments are submitted through the CI client and
    /// the submission's degradation tag replaces the decision's.
    fn push(&mut self, row: Vec<f32>) -> Option<eventhit_core::streaming::HorizonDecision> {
        match &mut self.resilient {
            None => self.predictor.push_frame(row),
            Some(client) => {
                let mut d = self
                    .predictor
                    .push_frame_resilient(row, client, self.stream_fps)?;
                if d.degradation == DegradationTag::None {
                    let relayed: u64 = d
                        .segments()
                        .iter()
                        .map(|&(_, s, e)| e.saturating_sub(s) + 1)
                        .sum();
                    if relayed > 0 {
                        let now = d.anchor as f64 / self.stream_fps.max(f64::MIN_POSITIVE);
                        d.degradation = client.submit(relayed, now).tag();
                    }
                }
                Some(d)
            }
        }
    }
}

/// Writes a `Rejected` reply and counts it under `serve.rejected` with
/// the code's stable label.
fn reject(
    io: &mut impl io::Write,
    t: &Telemetry,
    code: RejectCode,
    retry_after_ms: u32,
    detail: String,
) -> io::Result<()> {
    t.add_labeled("serve.rejected", code.label(), 1);
    write_message(
        io,
        &Message::Rejected {
            code,
            retry_after_ms,
            detail,
        },
    )
}
