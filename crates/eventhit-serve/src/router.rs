//! Deterministic stream → shard routing.
//!
//! Scale-out serving partitions streams across shards, each shard owning
//! its own admission caps, lanes, pool, durable directory, and telemetry
//! scope. The router is the seam that makes the partition invisible on
//! the wire: a pure function from stream id to shard index, so any
//! session thread — and any future replica — resolves the same stream to
//! the same shard without coordination.
//!
//! The implementation is Lamping–Veach *jump consistent hashing* over a
//! SplitMix64-mixed stream id: stateless (no ring to store), uniform
//! (each shard gets `1/N` of the id space), and monotone under resize
//! (growing `N → N+1` only moves the `1/(N+1)` of streams that land on
//! the new shard — no shuffling among survivors). Determinism and
//! balance are property-tested in `tests/router_props.rs`.

/// Stateless, deterministic stream → shard router.
///
/// Two routers built with the same shard count agree on every stream id,
/// across threads, processes, and restarts — which is what lets a
/// durable, sharded server recover each shard's directory independently
/// and still resolve every `Resume` to the shard that journaled it.
///
/// ```
/// use eventhit_serve::router::ShardRouter;
/// let r = ShardRouter::new(4);
/// for id in 0..1000 {
///     let s = r.route(id);
///     assert!(s < 4);
///     assert_eq!(s, r.route(id), "same id, same shard — always");
/// }
/// assert_eq!(ShardRouter::new(1).route(123), 0, "one shard owns everything");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: u32,
}

impl ShardRouter {
    /// A router over `shards` shards. `shards` must be at least 1.
    pub fn new(shards: u32) -> Self {
        assert!(shards >= 1, "a server needs at least one shard");
        ShardRouter { shards }
    }

    /// The number of shards routed over.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The shard owning `stream_id`; always in `0..shards`.
    pub fn route(&self, stream_id: u32) -> u32 {
        jump_hash(mix(stream_id), self.shards)
    }
}

/// SplitMix64 finalizer (same constants as `eventhit-rng`'s SplitMix64):
/// spreads dense, sequential stream ids over the full u64 space so the
/// jump hash sees uniform keys.
fn mix(stream_id: u32) -> u64 {
    let mut z = (stream_id as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Lamping–Veach jump consistent hash: maps `key` to a bucket in
/// `0..buckets` such that growing the bucket count only reassigns the
/// keys that move to the new bucket.
fn jump_hash(mut key: u64, buckets: u32) -> u32 {
    debug_assert!(buckets >= 1);
    let mut b: i64 = -1;
    let mut j: i64 = 0;
    while j < buckets as i64 {
        b = j;
        key = key.wrapping_mul(2_862_933_555_777_941_757).wrapping_add(1);
        j = (((b + 1) as f64) * ((1i64 << 31) as f64 / (((key >> 33) + 1) as f64))) as i64;
    }
    b as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_owns_every_stream() {
        let r = ShardRouter::new(1);
        for id in (0..10_000).chain([u32::MAX - 1, u32::MAX]) {
            assert_eq!(r.route(id), 0);
        }
    }

    #[test]
    fn routes_stay_in_range_at_every_shard_count() {
        for shards in 1..=32 {
            let r = ShardRouter::new(shards);
            for id in 0..2_000 {
                assert!(r.route(id) < shards, "id {id} escaped {shards} shards");
            }
        }
    }

    #[test]
    fn golden_routes_are_pinned() {
        // Pinned routes: any change to the mix or jump constants is a
        // routing change that strands durable per-shard directories, and
        // must show up here as a deliberate diff.
        let r4 = ShardRouter::new(4);
        let got: Vec<u32> = (0..16).map(|id| r4.route(id)).collect();
        assert_eq!(got, [3, 3, 0, 1, 3, 3, 0, 1, 0, 2, 2, 0, 1, 2, 3, 1]);
        let r8 = ShardRouter::new(8);
        let got: Vec<u32> = (0..16).map(|id| r8.route(id)).collect();
        assert_eq!(got, [7, 3, 0, 4, 7, 3, 5, 7, 5, 7, 5, 6, 7, 2, 7, 1]);
    }

    #[test]
    fn resize_is_monotone() {
        // Jump hashing's defining property: growing N → N+1 either keeps
        // a stream where it was or moves it to the *new* shard.
        for n in 1..16u32 {
            let small = ShardRouter::new(n);
            let grown = ShardRouter::new(n + 1);
            for id in 0..4_000 {
                let (a, b) = (small.route(id), grown.route(id));
                assert!(a == b || b == n, "id {id}: {a} -> {b} at {n}+1 shards");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_refused() {
        let _ = ShardRouter::new(0);
    }
}
