//! EventHit's stream-serving frontend: the system boundary where external
//! clients feed frames in and get marshalling decisions out.
//!
//! The in-process pipeline marshals streams it already owns; deployment
//! needs a *serving* boundary — admission, bounded queues, explicit
//! backpressure, a versioned wire format — because that boundary is where
//! filter-before-cloud systems win or lose their cost advantage. This
//! crate provides it with nothing beyond `std::net` and the workspace's
//! own crates:
//!
//! - [`protocol`] — the length-prefixed, versioned binary wire format and
//!   its pure codec. Deterministic byte-for-byte; `f32` features and
//!   scores cross the wire bit-exactly.
//! - [`admission`] — the per-shard stream caps and the bounded per-stream
//!   ingest queues behind the reject-with-retry-after backpressure policy,
//!   plus the cross-shard aggregate totals.
//! - [`router`] — the deterministic stream → shard router (jump
//!   consistent hashing over mixed stream ids) that makes scale-out
//!   partitioning invisible on the wire.
//! - [`server`] — the TCP frontend: sessions multiplexed onto an
//!   `eventhit-parallel` [`Pool`](eventhit_parallel::Pool), one
//!   `OnlinePredictor` lane per admitted stream, stream ownership
//!   partitioned across shards, optional resilient-CI wiring so
//!   degradation tags reach clients, `serve.*` telemetry.
//! - [`fleet`] — the deterministic synthetic-fleet load harness behind
//!   `eventhit-cli bench-fleet`: thousands of seeded streams, uniform or
//!   bursty arrivals, saturation metrics from the minor-2 metrics plane.
//! - [`client`] — the matching blocking client library used by the CLI's
//!   `bench-client` and the loopback tests; its typed [`Disconnected`]
//!   error tells callers a dead server apart from a protocol violation.
//! - [`convert`] — lossless mapping between core decisions and their wire
//!   images.
//!
//! Decisions served over the wire are bit-identical to the in-process
//! `run_lanes` path for the same model, state, and frames, at any worker
//! count — see the determinism notes on [`server`] and the loopback soak
//! test in the workspace's `tests/serve.rs`.
//!
//! With [`ServeConfig::durable`](server::ServeConfig) set, the server
//! event-sources every session through `eventhit-durable`: each admitted
//! stream, accepted batch, and emitted decision is committed to an
//! append-only log before the reply is written, snapshots bound replay
//! time, and a restarted server recovers bit-identical lane state so
//! clients can reconnect and `Resume` where they left off (protocol
//! minor 1). The durability model is specified in `docs/DESIGN.md`.
//!
//! With [`ServeConfig::sampling`](server::ServeConfig) set to a
//! non-`Fixed` policy, every admitted stream runs behind the
//! content-adaptive gate from `eventhit-core`'s `sampling` module:
//! low-motion frames are acknowledged and counted
//! (`stream.frames_skipped`) but not encoded, the collection window
//! adapts to recent event density (`stream.window_len`), and decisions
//! stay bit-identical across worker counts. Non-`Fixed` policies are
//! rejected in combination with `durable` — gate state is not captured
//! by snapshots. The model is specified in `docs/SAMPLING.md`.
//!
//! Protocol minor 2 adds the observability plane: `SubmitTraced` carries
//! a client-assigned trace id that is echoed on `TracedDecisions` and
//! attached to stage histograms as exemplars, and `MetricsQuery` /
//! `MetricsReply` expose the server's windowed time-series, counters,
//! and SLO burn state live over the wire (the `eventhit-cli top`
//! dashboard polls it).
//!
//! The wire format is specified in `docs/PROTOCOL.md`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod client;
pub mod convert;
pub mod fleet;
pub mod protocol;
pub mod router;
pub mod server;

pub use admission::{ServeTotals, SlotGuard};
pub use client::{
    is_disconnected, Disconnected, HealthInfo, MetricsInfo, Negotiated, Rejection, Response,
    ServeClient,
};
pub use fleet::{ArrivalPattern, FleetReport, FleetSpec};
pub use router::ShardRouter;
pub use server::{DurableOptions, LaneFactory, ResilienceSpec, ServeConfig, Server};
