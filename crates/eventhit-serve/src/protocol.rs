//! The EventHit wire protocol: a length-prefixed, versioned binary
//! framing with a pure, deterministic codec.
//!
//! Every message travels as one *frame*:
//!
//! ```text
//! +----------------+---------+------------------------+
//! | length: u32 LE | tag: u8 | body (length - 1 bytes)|
//! +----------------+---------+------------------------+
//! ```
//!
//! `length` counts the tag byte plus the body, never itself. All
//! integers are little-endian; `f32`/`f64` travel as their IEEE-754 bit
//! patterns via `to_le_bytes`, so feature values and scores survive the
//! wire bit-exactly — the property the loopback soak test relies on when
//! it compares served decisions against the in-process
//! `run_lanes` output.
//!
//! The codec here is *pure*: [`encode`] and [`try_decode`] touch no
//! sockets, no clocks, and no global state, so round-tripping is
//! deterministic and testable byte-for-byte. The blocking I/O helpers
//! [`write_message`] / [`read_message`] are thin wrappers that move whole
//! frames through any `Write`/`Read`.
//!
//! The full grammar, the version-negotiation rules, and a worked hex
//! example live in `docs/PROTOCOL.md`.
//!
//! # Round-trip example
//!
//! ```
//! use eventhit_serve::protocol::{encode, try_decode, Message};
//!
//! let msg = Message::SubmitFrames {
//!     stream_id: 7,
//!     dim: 2,
//!     data: vec![1.0, -0.5, 0.25, 3.5],
//! };
//! let bytes = encode(&msg);
//! let (decoded, consumed) = try_decode(&bytes).unwrap().unwrap();
//! assert_eq!(decoded, msg);
//! assert_eq!(consumed, bytes.len());
//!
//! // A truncated frame is "not yet", never an error:
//! assert!(try_decode(&bytes[..bytes.len() - 1]).unwrap().is_none());
//! ```

use std::io::{Read, Write};

/// Protocol major version. A server rejects any `Hello` whose major
/// version differs from its own: majors gate incompatible framing.
pub const PROTOCOL_MAJOR: u16 = 1;

/// Protocol minor version. Minors are negotiated down: the session runs
/// at `min(client_minor, server_minor)` of a shared major.
///
/// Minor 1 added [`Message::Resume`] / [`Message::Resumed`] (durable
/// reconnect-and-resume); minor 2 added decision tracing
/// ([`Message::SubmitTraced`] / [`Message::TracedDecisions`]) and the
/// live metrics plane ([`Message::MetricsQuery`] /
/// [`Message::MetricsReply`]). An older peer simply never sends them.
pub const PROTOCOL_MINOR: u16 = 2;

/// Hard cap on a single frame's payload (tag + body), in bytes. The
/// decoder refuses larger length prefixes outright instead of trusting a
/// corrupt or hostile peer with an allocation.
pub const MAX_FRAME_BYTES: usize = 1 << 24;

/// Everything that can go wrong while decoding a frame.
///
/// Note that an *incomplete* frame is not an error — [`try_decode`]
/// returns `Ok(None)` for those, because more bytes may still arrive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The frame's tag byte does not name any known message.
    UnknownTag(u8),
    /// The body ended before the fields the tag promises were read.
    Truncated {
        /// Tag of the message being decoded.
        tag: u8,
        /// Bytes the decoder still needed when the body ran out.
        needed: usize,
    },
    /// The body is longer than the fields the tag defines.
    TrailingBytes {
        /// Tag of the message being decoded.
        tag: u8,
        /// Bytes left over after all fields were read.
        extra: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    Oversized {
        /// The offending length-prefix value.
        declared: usize,
    },
    /// A declared length of zero (a frame must carry at least a tag).
    EmptyFrame,
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A field value outside its domain (e.g. an unknown enum code).
    BadValue(&'static str),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::UnknownTag(t) => write!(f, "unknown message tag 0x{t:02x}"),
            ProtocolError::Truncated { tag, needed } => {
                write!(
                    f,
                    "truncated body for tag 0x{tag:02x}: {needed} bytes short"
                )
            }
            ProtocolError::TrailingBytes { tag, extra } => {
                write!(f, "{extra} trailing bytes after tag 0x{tag:02x} body")
            }
            ProtocolError::Oversized { declared } => write!(
                f,
                "declared frame of {declared} bytes exceeds cap {MAX_FRAME_BYTES}"
            ),
            ProtocolError::EmptyFrame => write!(f, "zero-length frame (no tag byte)"),
            ProtocolError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            ProtocolError::BadValue(what) => write!(f, "field out of domain: {what}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Why the server refused a request, carried on [`Message::Rejected`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RejectCode {
    /// The client's protocol major version is not served here.
    VersionUnsupported = 0,
    /// Admission control: the server is at its stream capacity.
    TooManyStreams = 1,
    /// The submitted batch exceeds the negotiated `max_batch_frames`.
    BatchTooLarge = 2,
    /// The stream's bounded ingest queue cannot take the batch.
    QueueFull = 3,
    /// The referenced stream id was never opened (or already closed).
    UnknownStream = 4,
    /// The stream id is already open in this session.
    DuplicateStream = 5,
    /// The peer broke the protocol (bad frame, wrong state).
    Malformed = 6,
    /// A request arrived before the `Hello`/`HelloAck` handshake.
    NotReady = 7,
}

impl RejectCode {
    /// Decodes a wire byte back into a code.
    pub fn from_u8(v: u8) -> Result<Self, ProtocolError> {
        Ok(match v {
            0 => RejectCode::VersionUnsupported,
            1 => RejectCode::TooManyStreams,
            2 => RejectCode::BatchTooLarge,
            3 => RejectCode::QueueFull,
            4 => RejectCode::UnknownStream,
            5 => RejectCode::DuplicateStream,
            6 => RejectCode::Malformed,
            7 => RejectCode::NotReady,
            _ => return Err(ProtocolError::BadValue("reject code")),
        })
    }

    /// Stable lower-snake label (used as a telemetry counter label).
    pub fn label(&self) -> &'static str {
        match self {
            RejectCode::VersionUnsupported => "version_unsupported",
            RejectCode::TooManyStreams => "too_many_streams",
            RejectCode::BatchTooLarge => "batch_too_large",
            RejectCode::QueueFull => "queue_full",
            RejectCode::UnknownStream => "unknown_stream",
            RejectCode::DuplicateStream => "duplicate_stream",
            RejectCode::Malformed => "malformed",
            RejectCode::NotReady => "not_ready",
        }
    }
}

/// How (if at all) a served decision was degraded by the cloud path —
/// the wire image of `eventhit-core`'s `DegradationTag`, kept separate
/// so the codec stays dependency-free and field layouts stay explicit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireDegradation {
    /// Clean decision: the CI path was healthy (or not consulted).
    #[default]
    None,
    /// Delivered after this many retries.
    Retried(u32),
    /// The submission was dropped to the dead-letter queue.
    Dropped,
    /// The submission was deferred to the next horizon.
    Deferred,
    /// Served from the local predictor only; the CI was unreachable.
    LocalOnly,
}

/// One predicted interval of one event, as served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WirePrediction {
    /// True iff the event is predicted to occur in the horizon.
    pub present: bool,
    /// Predicted start offset in `[1, H]` (0 when absent).
    pub start: u32,
    /// Predicted end offset in `[1, H]` (0 when absent).
    pub end: u32,
}

/// One relay decision for one stream at one anchor, as served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireDecision {
    /// Anchor frame (0-based index of the last window frame).
    pub anchor: u64,
    /// Degradation status of the decision.
    pub degradation: WireDegradation,
    /// Per-event predictions, in event order.
    pub predictions: Vec<WirePrediction>,
}

/// A summary returned when a stream closes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSummary {
    /// Frames the server consumed on this stream.
    pub frames: u64,
    /// Decisions the server emitted on this stream.
    pub decisions: u64,
}

/// One time window of a metric's windowed series, as served on
/// [`Message::MetricsReply`] (protocol minor ≥ 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireWindow {
    /// Window index (`floor(clock_seconds / window_secs)`).
    pub index: u64,
    /// Samples observed in the window.
    pub count: u64,
    /// Sum of the observed values in the window.
    pub sum: f64,
    /// Median of the window's samples.
    pub p50: f64,
    /// 99th percentile of the window's samples.
    pub p99: f64,
}

/// One metric's windowed time-series, as served.
#[derive(Debug, Clone, PartialEq)]
pub struct WireSeries {
    /// Metric name (e.g. `serve.stage_seconds`).
    pub name: String,
    /// Series label (e.g. `inference`; empty for the unlabeled series).
    pub label: String,
    /// Per-window stats, oldest first.
    pub windows: Vec<WireWindow>,
}

/// One SLO tracker's state, as served.
#[derive(Debug, Clone, PartialEq)]
pub struct WireSlo {
    /// Metric name the SLO is registered on.
    pub name: String,
    /// Series label the SLO is registered on.
    pub label: String,
    /// Latency threshold in seconds a sample must not exceed.
    pub threshold: f64,
    /// Target fraction of compliant samples (e.g. 0.99).
    pub objective: f64,
    /// Total samples observed against the SLO.
    pub total: u64,
    /// Samples that exceeded the threshold.
    pub violations: u64,
}

impl WireSlo {
    /// Error-budget burn rate: observed violation fraction over the
    /// allowed fraction `1 - objective` (0 when no samples yet).
    pub fn burn_rate(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let budget = (1.0 - self.objective).max(1e-9);
        (self.violations as f64 / self.total as f64) / budget
    }
}

/// One counter value, as served on [`Message::MetricsReply`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireCounter {
    /// Counter name (e.g. `serve.rejected`).
    pub name: String,
    /// Counter label (e.g. a reject-code label; may be empty).
    pub label: String,
    /// Accumulated value.
    pub value: u64,
}

/// Every message of protocol major 1.
///
/// Client → server: `Hello`, `OpenStream`, `SubmitFrames`,
/// `SubmitTraced`, `CloseStream`, `Health`, `TelemetryQuery`,
/// `MetricsQuery`, `Resume`. Server → client: everything else.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client handshake: the protocol version the client speaks.
    Hello {
        /// Client protocol major version.
        major: u16,
        /// Client protocol minor version.
        minor: u16,
    },
    /// Server handshake reply: the negotiated version plus the admission
    /// limits the client must respect.
    HelloAck {
        /// Negotiated major version (equals the client's).
        major: u16,
        /// Negotiated minor version (`min(client, server)`).
        minor: u16,
        /// Server-wide cap on concurrently open streams.
        max_streams: u32,
        /// Largest number of frames accepted in one `SubmitFrames`.
        max_batch_frames: u32,
        /// Per-stream ingest-queue bound, in frames.
        max_queue_frames: u32,
    },
    /// Opens a stream lane under a client-chosen id.
    OpenStream {
        /// Client-chosen stream identifier, unique within the session.
        stream_id: u32,
    },
    /// Server confirmation that the lane is admitted and running.
    StreamOpened {
        /// Echo of the admitted stream id.
        stream_id: u32,
    },
    /// A batch of per-frame feature rows for one stream, row-major.
    SubmitFrames {
        /// Target stream id.
        stream_id: u32,
        /// Feature dimensionality of each row.
        dim: u32,
        /// `rows * dim` feature values, row-major. `rows` is implied
        /// (`data.len() / dim`) and checked on decode.
        data: Vec<f32>,
    },
    /// Decisions produced by the batch that was just consumed (possibly
    /// empty — decisions only fire once per horizon).
    Decisions {
        /// Stream the decisions belong to.
        stream_id: u32,
        /// The decisions, in anchor order.
        decisions: Vec<WireDecision>,
    },
    /// Closes a stream lane.
    CloseStream {
        /// Stream id to close.
        stream_id: u32,
    },
    /// Server confirmation of a close, with lifetime totals.
    StreamClosed {
        /// Echo of the closed stream id.
        stream_id: u32,
        /// Totals for the stream's lifetime.
        summary: StreamSummary,
    },
    /// Liveness / load probe.
    Health,
    /// Reply to [`Message::Health`].
    HealthReport {
        /// Streams currently open across all sessions.
        active_streams: u32,
        /// Sessions served so far (including the asking one).
        sessions: u64,
        /// Frames consumed so far, all streams.
        frames: u64,
        /// Decisions emitted so far, all streams.
        decisions: u64,
    },
    /// Asks the server for its telemetry snapshot.
    TelemetryQuery,
    /// Reply to [`Message::TelemetryQuery`]: the canonical JSONL export
    /// of the server's recorder (empty when none is attached).
    TelemetryReport {
        /// `TelemetrySnapshot::to_jsonl()` bytes, UTF-8.
        jsonl: String,
    },
    /// Re-attaches to a stream that survives in the server's durable
    /// state (protocol minor ≥ 1). `last_seq` is the client's count of
    /// frames it believes the server accepted; the server replies with
    /// the authoritative [`Message::Resumed`] so the client knows where
    /// to continue submitting.
    Resume {
        /// The durable stream to re-attach.
        stream_id: u32,
        /// Frames the client believes were accepted (its own count of
        /// acknowledged submissions). Must not exceed the server's.
        last_seq: u64,
    },
    /// Server confirmation of a [`Message::Resume`] (protocol minor ≥ 1).
    Resumed {
        /// Echo of the resumed stream id.
        stream_id: u32,
        /// The server-authoritative frame count: the client submits the
        /// stream's rows from this absolute index onward. May exceed the
        /// client's `last_seq` when a crash cut the acknowledgement (the
        /// frames were logged; their decisions are not retransmitted).
        next_seq: u64,
    },
    /// The server refused a request; the session stays usable unless the
    /// code is fatal ([`RejectCode::VersionUnsupported`],
    /// [`RejectCode::Malformed`]).
    Rejected {
        /// Why the request was refused.
        code: RejectCode,
        /// Backpressure hint: milliseconds to wait before retrying
        /// (0 when retrying cannot help, e.g. version mismatch).
        retry_after_ms: u32,
        /// Human-readable detail.
        detail: String,
    },
    /// Like [`Message::SubmitFrames`] but carrying a client-assigned
    /// trace id (protocol minor ≥ 2). The server threads the id through
    /// every stage of the decision path (histogram exemplars, slow-log
    /// entries) and echoes it on the [`Message::TracedDecisions`] reply.
    SubmitTraced {
        /// Client-assigned trace id, opaque to the server.
        trace_id: u64,
        /// Target stream id.
        stream_id: u32,
        /// Feature dimensionality of each row.
        dim: u32,
        /// `rows * dim` feature values, row-major.
        data: Vec<f32>,
    },
    /// Reply to [`Message::SubmitTraced`] (protocol minor ≥ 2): the same
    /// decisions a [`Message::Decisions`] would carry, plus the echoed
    /// trace id of the push that produced them.
    TracedDecisions {
        /// Bit-exact echo of the submitting push's trace id.
        trace_id: u64,
        /// Stream the decisions belong to.
        stream_id: u32,
        /// The decisions, in anchor order.
        decisions: Vec<WireDecision>,
    },
    /// Asks the server for its windowed time-series and SLO state
    /// (protocol minor ≥ 2). Unlike [`Message::TelemetryQuery`] — which
    /// returns the full JSONL snapshot — this returns a compact typed
    /// reply sized for a polling dashboard.
    MetricsQuery,
    /// Reply to [`Message::MetricsQuery`] (protocol minor ≥ 2).
    MetricsReply {
        /// Server clock reading in seconds when the reply was built.
        clock_now: f64,
        /// Width in clock seconds of each series window.
        window_secs: f64,
        /// Every counter the recorder holds, sorted by `(name, label)`.
        counters: Vec<WireCounter>,
        /// Every windowed series, sorted by `(name, label)`.
        series: Vec<WireSeries>,
        /// Every registered SLO tracker, sorted by `(name, label)`.
        slos: Vec<WireSlo>,
    },
}

// Wire tags. Changing any of these is a major-version break.
const TAG_HELLO: u8 = 0x01;
const TAG_HELLO_ACK: u8 = 0x02;
const TAG_OPEN_STREAM: u8 = 0x03;
const TAG_STREAM_OPENED: u8 = 0x04;
const TAG_SUBMIT_FRAMES: u8 = 0x05;
const TAG_DECISIONS: u8 = 0x06;
const TAG_CLOSE_STREAM: u8 = 0x07;
const TAG_STREAM_CLOSED: u8 = 0x08;
const TAG_HEALTH: u8 = 0x09;
const TAG_HEALTH_REPORT: u8 = 0x0A;
const TAG_TELEMETRY_QUERY: u8 = 0x0B;
const TAG_TELEMETRY_REPORT: u8 = 0x0C;
const TAG_REJECTED: u8 = 0x0D;
const TAG_RESUME: u8 = 0x0E;
const TAG_RESUMED: u8 = 0x0F;
const TAG_SUBMIT_TRACED: u8 = 0x10;
const TAG_TRACED_DECISIONS: u8 = 0x11;
const TAG_METRICS_QUERY: u8 = 0x12;
const TAG_METRICS_REPLY: u8 = 0x13;

impl Message {
    /// The message's wire tag byte.
    pub fn tag(&self) -> u8 {
        match self {
            Message::Hello { .. } => TAG_HELLO,
            Message::HelloAck { .. } => TAG_HELLO_ACK,
            Message::OpenStream { .. } => TAG_OPEN_STREAM,
            Message::StreamOpened { .. } => TAG_STREAM_OPENED,
            Message::SubmitFrames { .. } => TAG_SUBMIT_FRAMES,
            Message::Decisions { .. } => TAG_DECISIONS,
            Message::CloseStream { .. } => TAG_CLOSE_STREAM,
            Message::StreamClosed { .. } => TAG_STREAM_CLOSED,
            Message::Health => TAG_HEALTH,
            Message::HealthReport { .. } => TAG_HEALTH_REPORT,
            Message::TelemetryQuery => TAG_TELEMETRY_QUERY,
            Message::TelemetryReport { .. } => TAG_TELEMETRY_REPORT,
            Message::Rejected { .. } => TAG_REJECTED,
            Message::Resume { .. } => TAG_RESUME,
            Message::Resumed { .. } => TAG_RESUMED,
            Message::SubmitTraced { .. } => TAG_SUBMIT_TRACED,
            Message::TracedDecisions { .. } => TAG_TRACED_DECISIONS,
            Message::MetricsQuery => TAG_METRICS_QUERY,
            Message::MetricsReply { .. } => TAG_METRICS_REPLY,
        }
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_degradation(out: &mut Vec<u8>, d: WireDegradation) {
    match d {
        WireDegradation::None => out.push(0),
        WireDegradation::Retried(r) => {
            out.push(1);
            put_u32(out, r);
        }
        WireDegradation::Dropped => out.push(2),
        WireDegradation::Deferred => out.push(3),
        WireDegradation::LocalOnly => out.push(4),
    }
}

fn put_decision(out: &mut Vec<u8>, d: &WireDecision) {
    put_u64(out, d.anchor);
    put_degradation(out, d.degradation);
    put_u32(out, d.predictions.len() as u32);
    for p in &d.predictions {
        out.push(p.present as u8);
        put_u32(out, p.start);
        put_u32(out, p.end);
    }
}

/// Encodes `msg` into one complete frame (length prefix included).
///
/// Deterministic: the same message always yields the same bytes, which is
/// what lets tests fingerprint served traffic.
pub fn encode(msg: &Message) -> Vec<u8> {
    let mut payload = Vec::with_capacity(16);
    payload.push(msg.tag());
    match msg {
        Message::Hello { major, minor } => {
            put_u16(&mut payload, *major);
            put_u16(&mut payload, *minor);
        }
        Message::HelloAck {
            major,
            minor,
            max_streams,
            max_batch_frames,
            max_queue_frames,
        } => {
            put_u16(&mut payload, *major);
            put_u16(&mut payload, *minor);
            put_u32(&mut payload, *max_streams);
            put_u32(&mut payload, *max_batch_frames);
            put_u32(&mut payload, *max_queue_frames);
        }
        Message::OpenStream { stream_id }
        | Message::StreamOpened { stream_id }
        | Message::CloseStream { stream_id } => put_u32(&mut payload, *stream_id),
        Message::SubmitFrames {
            stream_id,
            dim,
            data,
        } => {
            put_u32(&mut payload, *stream_id);
            put_u32(&mut payload, *dim);
            put_u32(&mut payload, data.len() as u32);
            payload.reserve(data.len() * 4);
            for &v in data {
                put_f32(&mut payload, v);
            }
        }
        Message::Decisions {
            stream_id,
            decisions,
        } => {
            put_u32(&mut payload, *stream_id);
            put_u32(&mut payload, decisions.len() as u32);
            for d in decisions {
                put_decision(&mut payload, d);
            }
        }
        Message::StreamClosed { stream_id, summary } => {
            put_u32(&mut payload, *stream_id);
            put_u64(&mut payload, summary.frames);
            put_u64(&mut payload, summary.decisions);
        }
        Message::Health | Message::TelemetryQuery => {}
        Message::HealthReport {
            active_streams,
            sessions,
            frames,
            decisions,
        } => {
            put_u32(&mut payload, *active_streams);
            put_u64(&mut payload, *sessions);
            put_u64(&mut payload, *frames);
            put_u64(&mut payload, *decisions);
        }
        Message::TelemetryReport { jsonl } => put_str(&mut payload, jsonl),
        Message::Rejected {
            code,
            retry_after_ms,
            detail,
        } => {
            payload.push(*code as u8);
            put_u32(&mut payload, *retry_after_ms);
            put_str(&mut payload, detail);
        }
        Message::Resume {
            stream_id,
            last_seq,
        } => {
            put_u32(&mut payload, *stream_id);
            put_u64(&mut payload, *last_seq);
        }
        Message::Resumed {
            stream_id,
            next_seq,
        } => {
            put_u32(&mut payload, *stream_id);
            put_u64(&mut payload, *next_seq);
        }
        Message::SubmitTraced {
            trace_id,
            stream_id,
            dim,
            data,
        } => {
            put_u64(&mut payload, *trace_id);
            put_u32(&mut payload, *stream_id);
            put_u32(&mut payload, *dim);
            put_u32(&mut payload, data.len() as u32);
            payload.reserve(data.len() * 4);
            for &v in data {
                put_f32(&mut payload, v);
            }
        }
        Message::TracedDecisions {
            trace_id,
            stream_id,
            decisions,
        } => {
            put_u64(&mut payload, *trace_id);
            put_u32(&mut payload, *stream_id);
            put_u32(&mut payload, decisions.len() as u32);
            for d in decisions {
                put_decision(&mut payload, d);
            }
        }
        Message::MetricsQuery => {}
        Message::MetricsReply {
            clock_now,
            window_secs,
            counters,
            series,
            slos,
        } => {
            put_f64(&mut payload, *clock_now);
            put_f64(&mut payload, *window_secs);
            put_u32(&mut payload, counters.len() as u32);
            for c in counters {
                put_str(&mut payload, &c.name);
                put_str(&mut payload, &c.label);
                put_u64(&mut payload, c.value);
            }
            put_u32(&mut payload, series.len() as u32);
            for s in series {
                put_str(&mut payload, &s.name);
                put_str(&mut payload, &s.label);
                put_u32(&mut payload, s.windows.len() as u32);
                for w in &s.windows {
                    put_u64(&mut payload, w.index);
                    put_u64(&mut payload, w.count);
                    put_f64(&mut payload, w.sum);
                    put_f64(&mut payload, w.p50);
                    put_f64(&mut payload, w.p99);
                }
            }
            put_u32(&mut payload, slos.len() as u32);
            for s in slos {
                put_str(&mut payload, &s.name);
                put_str(&mut payload, &s.label);
                put_f64(&mut payload, s.threshold);
                put_f64(&mut payload, s.objective);
                put_u64(&mut payload, s.total);
                put_u64(&mut payload, s.violations);
            }
        }
    }
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A bounds-checked cursor over one frame's body.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    tag: u8,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        if self.pos + n > self.buf.len() {
            return Err(ProtocolError::Truncated {
                tag: self.tag,
                needed: self.pos + n - self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, ProtocolError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f32(&mut self) -> Result<f32, ProtocolError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, ProtocolError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn string(&mut self) -> Result<String, ProtocolError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::BadUtf8)
    }
    fn degradation(&mut self) -> Result<WireDegradation, ProtocolError> {
        Ok(match self.u8()? {
            0 => WireDegradation::None,
            1 => WireDegradation::Retried(self.u32()?),
            2 => WireDegradation::Dropped,
            3 => WireDegradation::Deferred,
            4 => WireDegradation::LocalOnly,
            _ => return Err(ProtocolError::BadValue("degradation tag")),
        })
    }
    fn decision(&mut self) -> Result<WireDecision, ProtocolError> {
        let anchor = self.u64()?;
        let degradation = self.degradation()?;
        let n = self.u32()? as usize;
        let mut predictions = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let present = match self.u8()? {
                0 => false,
                1 => true,
                _ => return Err(ProtocolError::BadValue("prediction presence")),
            };
            let start = self.u32()?;
            let end = self.u32()?;
            predictions.push(WirePrediction {
                present,
                start,
                end,
            });
        }
        Ok(WireDecision {
            anchor,
            degradation,
            predictions,
        })
    }
    fn finish(self) -> Result<(), ProtocolError> {
        if self.pos != self.buf.len() {
            return Err(ProtocolError::TrailingBytes {
                tag: self.tag,
                extra: self.buf.len() - self.pos,
            });
        }
        Ok(())
    }
}

/// Decodes one frame's payload (tag byte + body, no length prefix).
pub fn decode_payload(payload: &[u8]) -> Result<Message, ProtocolError> {
    let Some((&tag, body)) = payload.split_first() else {
        return Err(ProtocolError::EmptyFrame);
    };
    let mut c = Cursor {
        buf: body,
        pos: 0,
        tag,
    };
    let msg = match tag {
        TAG_HELLO => Message::Hello {
            major: c.u16()?,
            minor: c.u16()?,
        },
        TAG_HELLO_ACK => Message::HelloAck {
            major: c.u16()?,
            minor: c.u16()?,
            max_streams: c.u32()?,
            max_batch_frames: c.u32()?,
            max_queue_frames: c.u32()?,
        },
        TAG_OPEN_STREAM => Message::OpenStream {
            stream_id: c.u32()?,
        },
        TAG_STREAM_OPENED => Message::StreamOpened {
            stream_id: c.u32()?,
        },
        TAG_SUBMIT_FRAMES => {
            let stream_id = c.u32()?;
            let dim = c.u32()?;
            let len = c.u32()? as usize;
            if dim > 0 && !len.is_multiple_of(dim as usize) {
                return Err(ProtocolError::BadValue("data length not a multiple of dim"));
            }
            let mut data = Vec::with_capacity(len);
            for _ in 0..len {
                data.push(c.f32()?);
            }
            Message::SubmitFrames {
                stream_id,
                dim,
                data,
            }
        }
        TAG_DECISIONS => {
            let stream_id = c.u32()?;
            let n = c.u32()? as usize;
            let mut decisions = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                decisions.push(c.decision()?);
            }
            Message::Decisions {
                stream_id,
                decisions,
            }
        }
        TAG_CLOSE_STREAM => Message::CloseStream {
            stream_id: c.u32()?,
        },
        TAG_STREAM_CLOSED => Message::StreamClosed {
            stream_id: c.u32()?,
            summary: StreamSummary {
                frames: c.u64()?,
                decisions: c.u64()?,
            },
        },
        TAG_HEALTH => Message::Health,
        TAG_HEALTH_REPORT => Message::HealthReport {
            active_streams: c.u32()?,
            sessions: c.u64()?,
            frames: c.u64()?,
            decisions: c.u64()?,
        },
        TAG_TELEMETRY_QUERY => Message::TelemetryQuery,
        TAG_TELEMETRY_REPORT => Message::TelemetryReport { jsonl: c.string()? },
        TAG_REJECTED => Message::Rejected {
            code: RejectCode::from_u8(c.u8()?)?,
            retry_after_ms: c.u32()?,
            detail: c.string()?,
        },
        TAG_RESUME => Message::Resume {
            stream_id: c.u32()?,
            last_seq: c.u64()?,
        },
        TAG_RESUMED => Message::Resumed {
            stream_id: c.u32()?,
            next_seq: c.u64()?,
        },
        TAG_SUBMIT_TRACED => {
            let trace_id = c.u64()?;
            let stream_id = c.u32()?;
            let dim = c.u32()?;
            let len = c.u32()? as usize;
            if dim > 0 && !len.is_multiple_of(dim as usize) {
                return Err(ProtocolError::BadValue("data length not a multiple of dim"));
            }
            let mut data = Vec::with_capacity(len);
            for _ in 0..len {
                data.push(c.f32()?);
            }
            Message::SubmitTraced {
                trace_id,
                stream_id,
                dim,
                data,
            }
        }
        TAG_TRACED_DECISIONS => {
            let trace_id = c.u64()?;
            let stream_id = c.u32()?;
            let n = c.u32()? as usize;
            let mut decisions = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                decisions.push(c.decision()?);
            }
            Message::TracedDecisions {
                trace_id,
                stream_id,
                decisions,
            }
        }
        TAG_METRICS_QUERY => Message::MetricsQuery,
        TAG_METRICS_REPLY => {
            let clock_now = c.f64()?;
            let window_secs = c.f64()?;
            let n = c.u32()? as usize;
            let mut counters = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                counters.push(WireCounter {
                    name: c.string()?,
                    label: c.string()?,
                    value: c.u64()?,
                });
            }
            let n = c.u32()? as usize;
            let mut series = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let name = c.string()?;
                let label = c.string()?;
                let w = c.u32()? as usize;
                let mut windows = Vec::with_capacity(w.min(4096));
                for _ in 0..w {
                    windows.push(WireWindow {
                        index: c.u64()?,
                        count: c.u64()?,
                        sum: c.f64()?,
                        p50: c.f64()?,
                        p99: c.f64()?,
                    });
                }
                series.push(WireSeries {
                    name,
                    label,
                    windows,
                });
            }
            let n = c.u32()? as usize;
            let mut slos = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                slos.push(WireSlo {
                    name: c.string()?,
                    label: c.string()?,
                    threshold: c.f64()?,
                    objective: c.f64()?,
                    total: c.u64()?,
                    violations: c.u64()?,
                });
            }
            Message::MetricsReply {
                clock_now,
                window_secs,
                counters,
                series,
                slos,
            }
        }
        other => return Err(ProtocolError::UnknownTag(other)),
    };
    c.finish()?;
    Ok(msg)
}

/// Attempts to decode one frame from the front of `buf`.
///
/// Returns `Ok(None)` when `buf` does not yet hold a complete frame
/// (keep reading), or `Ok(Some((message, consumed)))` where `consumed`
/// bytes should be drained from the front of the buffer.
pub fn try_decode(buf: &[u8]) -> Result<Option<(Message, usize)>, ProtocolError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let declared = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
    if declared == 0 {
        return Err(ProtocolError::EmptyFrame);
    }
    if declared > MAX_FRAME_BYTES {
        return Err(ProtocolError::Oversized { declared });
    }
    if buf.len() < 4 + declared {
        return Ok(None);
    }
    let msg = decode_payload(&buf[4..4 + declared])?;
    Ok(Some((msg, 4 + declared)))
}

// ---------------------------------------------------------------------------
// Blocking I/O helpers
// ---------------------------------------------------------------------------

/// Writes one complete frame for `msg` to `w` and flushes.
pub fn write_message(w: &mut impl Write, msg: &Message) -> std::io::Result<()> {
    w.write_all(&encode(msg))?;
    w.flush()
}

/// Reads exactly one frame from `r` and decodes it.
///
/// Returns `Ok(None)` on a clean EOF at a frame boundary (the peer hung
/// up between messages); mid-frame EOF and protocol violations surface
/// as `io::Error` (`UnexpectedEof` / `InvalidData`).
pub fn read_message(r: &mut impl Read) -> std::io::Result<Option<Message>> {
    let mut len = [0u8; 4];
    // A clean EOF before any length byte is a normal disconnect.
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "EOF inside a frame length prefix",
                ))
            }
            n => filled += n,
        }
    }
    let declared = u32::from_le_bytes(len) as usize;
    if declared == 0 || declared > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            ProtocolError::Oversized { declared },
        ));
    }
    let mut payload = vec![0u8; declared];
    r.read_exact(&mut payload)?;
    decode_payload(&payload)
        .map(Some)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_messages() -> Vec<Message> {
        vec![
            Message::Hello {
                major: PROTOCOL_MAJOR,
                minor: PROTOCOL_MINOR,
            },
            Message::HelloAck {
                major: 1,
                minor: 0,
                max_streams: 64,
                max_batch_frames: 4096,
                max_queue_frames: 8192,
            },
            Message::OpenStream { stream_id: 3 },
            Message::StreamOpened { stream_id: 3 },
            Message::SubmitFrames {
                stream_id: 3,
                dim: 3,
                data: vec![0.0, -1.5, f32::MAX, f32::MIN_POSITIVE, 2.5e-7, 1.0],
            },
            Message::Decisions {
                stream_id: 3,
                decisions: vec![
                    WireDecision {
                        anchor: 99,
                        degradation: WireDegradation::None,
                        predictions: vec![
                            WirePrediction {
                                present: true,
                                start: 4,
                                end: 17,
                            },
                            WirePrediction {
                                present: false,
                                start: 0,
                                end: 0,
                            },
                        ],
                    },
                    WireDecision {
                        anchor: 199,
                        degradation: WireDegradation::Retried(2),
                        predictions: vec![],
                    },
                    WireDecision {
                        anchor: 299,
                        degradation: WireDegradation::LocalOnly,
                        predictions: vec![WirePrediction {
                            present: true,
                            start: 1,
                            end: 1,
                        }],
                    },
                ],
            },
            Message::CloseStream { stream_id: 3 },
            Message::StreamClosed {
                stream_id: 3,
                summary: StreamSummary {
                    frames: 1_000_000,
                    decisions: 2_000,
                },
            },
            Message::Health,
            Message::HealthReport {
                active_streams: 5,
                sessions: 17,
                frames: 123_456,
                decisions: 789,
            },
            Message::TelemetryQuery,
            Message::TelemetryReport {
                jsonl: "{\"k\":\"serve.frames\",\"v\":1}\n".into(),
            },
            Message::Rejected {
                code: RejectCode::QueueFull,
                retry_after_ms: 250,
                detail: "stream 3 queue at 8192/8192 frames".into(),
            },
            Message::Resume {
                stream_id: 3,
                last_seq: 12_345,
            },
            Message::Resumed {
                stream_id: 3,
                next_seq: 12_349,
            },
            Message::SubmitTraced {
                trace_id: 0xDEAD_BEEF_0123_4567,
                stream_id: 3,
                dim: 2,
                data: vec![0.5, -0.5, f32::MAX, 1.0],
            },
            Message::TracedDecisions {
                trace_id: 0xDEAD_BEEF_0123_4567,
                stream_id: 3,
                decisions: vec![WireDecision {
                    anchor: 63,
                    degradation: WireDegradation::None,
                    predictions: vec![WirePrediction {
                        present: true,
                        start: 2,
                        end: 9,
                    }],
                }],
            },
            Message::MetricsQuery,
            Message::MetricsReply {
                clock_now: 12.75,
                window_secs: 1.0,
                counters: vec![
                    WireCounter {
                        name: "serve.frames".into(),
                        label: String::new(),
                        value: 4096,
                    },
                    WireCounter {
                        name: "serve.rejected".into(),
                        label: "queue_full".into(),
                        value: 3,
                    },
                ],
                series: vec![WireSeries {
                    name: "serve.stage_seconds".into(),
                    label: "inference".into(),
                    windows: vec![
                        WireWindow {
                            index: 11,
                            count: 128,
                            sum: 0.25,
                            p50: 1.5e-3,
                            p99: 9.0e-3,
                        },
                        WireWindow {
                            index: 12,
                            count: 64,
                            sum: 0.125,
                            p50: 1.5e-3,
                            p99: 4.0e-3,
                        },
                    ],
                }],
                slos: vec![WireSlo {
                    name: "serve.decision_seconds".into(),
                    label: String::new(),
                    threshold: 0.050,
                    objective: 0.99,
                    total: 10_000,
                    violations: 17,
                }],
            },
        ]
    }

    #[test]
    fn every_message_round_trips() {
        for msg in all_messages() {
            let bytes = encode(&msg);
            let (decoded, consumed) = try_decode(&bytes)
                .unwrap_or_else(|e| panic!("{msg:?}: {e}"))
                .expect("complete frame");
            assert_eq!(decoded, msg);
            assert_eq!(consumed, bytes.len());
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        for msg in all_messages() {
            assert_eq!(encode(&msg), encode(&msg));
        }
    }

    #[test]
    fn f32_bits_survive_the_wire() {
        let data = vec![f32::NAN, -0.0, 1.0 + f32::EPSILON, 3.5e-39];
        let msg = Message::SubmitFrames {
            stream_id: 0,
            dim: 1,
            data: data.clone(),
        };
        let (decoded, _) = try_decode(&encode(&msg)).unwrap().unwrap();
        let Message::SubmitFrames { data: got, .. } = decoded else {
            panic!("wrong variant");
        };
        for (a, b) in data.iter().zip(&got) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn every_truncation_is_incomplete_not_error() {
        // Chopping a complete frame anywhere must yield Ok(None): the
        // decoder can never misread a prefix as a shorter valid frame.
        for msg in all_messages() {
            let bytes = encode(&msg);
            for cut in 0..bytes.len() {
                assert_eq!(
                    try_decode(&bytes[..cut]).unwrap_or_else(|e| panic!("{msg:?}@{cut}: {e}")),
                    None,
                    "{msg:?} cut at {cut}"
                );
            }
        }
    }

    #[test]
    fn truncated_payload_inside_frame_is_an_error() {
        // A frame whose declared length is too short for its fields.
        let mut bytes = encode(&Message::OpenStream { stream_id: 9 });
        // Shrink the declared payload to tag + 2 bytes (body needs 4).
        bytes[0] = 3;
        bytes.truncate(4 + 3);
        let err = try_decode(&bytes).unwrap_err();
        assert!(matches!(err, ProtocolError::Truncated { .. }), "{err:?}");
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let frame = [1u8, 0, 0, 0, 0xEE];
        assert_eq!(
            try_decode(&frame).unwrap_err(),
            ProtocolError::UnknownTag(0xEE)
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode(&Message::Health);
        // Declare one extra byte and append it.
        bytes[0] = 2;
        bytes.push(0xFF);
        let err = try_decode(&bytes).unwrap_err();
        assert_eq!(
            err,
            ProtocolError::TrailingBytes {
                tag: TAG_HEALTH,
                extra: 1
            }
        );
    }

    #[test]
    fn oversized_and_empty_frames_are_rejected() {
        let huge = (MAX_FRAME_BYTES as u32 + 1).to_le_bytes();
        assert!(matches!(
            try_decode(&huge).unwrap_err(),
            ProtocolError::Oversized { .. }
        ));
        assert_eq!(
            try_decode(&[0, 0, 0, 0]).unwrap_err(),
            ProtocolError::EmptyFrame
        );
    }

    #[test]
    fn bad_enum_codes_are_rejected() {
        let mut bytes = encode(&Message::Rejected {
            code: RejectCode::Malformed,
            retry_after_ms: 0,
            detail: String::new(),
        });
        bytes[5] = 99; // first body byte = reject code
        assert_eq!(
            try_decode(&bytes).unwrap_err(),
            ProtocolError::BadValue("reject code")
        );
    }

    #[test]
    fn submit_dim_mismatch_is_rejected() {
        let mut payload = vec![TAG_SUBMIT_FRAMES];
        payload.extend_from_slice(&7u32.to_le_bytes()); // stream
        payload.extend_from_slice(&3u32.to_le_bytes()); // dim
        payload.extend_from_slice(&4u32.to_le_bytes()); // len not divisible by 3
        payload.extend_from_slice(&[0u8; 16]);
        assert_eq!(
            decode_payload(&payload).unwrap_err(),
            ProtocolError::BadValue("data length not a multiple of dim")
        );
    }

    #[test]
    fn io_helpers_move_frames_and_signal_clean_eof() {
        let mut wire = Vec::new();
        for msg in all_messages() {
            write_message(&mut wire, &msg).unwrap();
        }
        let mut r = wire.as_slice();
        for msg in all_messages() {
            assert_eq!(read_message(&mut r).unwrap(), Some(msg));
        }
        assert_eq!(read_message(&mut r).unwrap(), None, "clean EOF");

        // Mid-frame EOF is an error, not a clean end.
        let partial = &encode(&Message::Health)[..2];
        let mut r = partial;
        assert!(read_message(&mut r).is_err());
    }

    #[test]
    fn back_to_back_frames_decode_in_sequence() {
        let a = Message::OpenStream { stream_id: 1 };
        let b = Message::Health;
        let mut buf = encode(&a);
        buf.extend_from_slice(&encode(&b));
        let (first, used) = try_decode(&buf).unwrap().unwrap();
        assert_eq!(first, a);
        let (second, used2) = try_decode(&buf[used..]).unwrap().unwrap();
        assert_eq!(second, b);
        assert_eq!(used + used2, buf.len());
    }

    #[test]
    fn trace_ids_survive_the_wire_bit_exactly() {
        for trace_id in [0u64, 1, u64::MAX, 0x0123_4567_89AB_CDEF] {
            let msg = Message::SubmitTraced {
                trace_id,
                stream_id: 1,
                dim: 1,
                data: vec![1.0],
            };
            let (decoded, _) = try_decode(&encode(&msg)).unwrap().unwrap();
            let Message::SubmitTraced { trace_id: got, .. } = decoded else {
                panic!("wrong variant");
            };
            assert_eq!(got, trace_id);
        }
    }

    #[test]
    fn wire_slo_burn_rate() {
        let mut slo = WireSlo {
            name: "x".into(),
            label: String::new(),
            threshold: 0.05,
            objective: 0.99,
            total: 0,
            violations: 0,
        };
        assert_eq!(slo.burn_rate(), 0.0);
        slo.total = 100;
        slo.violations = 1;
        assert!((slo.burn_rate() - 1.0).abs() < 1e-9);
        slo.violations = 5;
        assert!((slo.burn_rate() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn traced_submit_dim_mismatch_is_rejected() {
        let mut payload = vec![TAG_SUBMIT_TRACED];
        payload.extend_from_slice(&9u64.to_le_bytes()); // trace
        payload.extend_from_slice(&7u32.to_le_bytes()); // stream
        payload.extend_from_slice(&3u32.to_le_bytes()); // dim
        payload.extend_from_slice(&4u32.to_le_bytes()); // len not divisible by 3
        payload.extend_from_slice(&[0u8; 16]);
        assert_eq!(
            decode_payload(&payload).unwrap_err(),
            ProtocolError::BadValue("data length not a multiple of dim")
        );
    }

    #[test]
    fn reject_codes_round_trip() {
        for v in 0u8..8 {
            let code = RejectCode::from_u8(v).unwrap();
            assert_eq!(code as u8, v);
            assert!(!code.label().is_empty());
        }
        assert!(RejectCode::from_u8(8).is_err());
    }
}
