//! Lossless mapping between `eventhit-core` decision types and their wire
//! images.
//!
//! The wire types in [`crate::protocol`] deliberately do not depend on
//! `eventhit-core`, so the codec stays a pure, self-contained layer; this
//! module is the single place where the two vocabularies meet. Both
//! directions are total and inverse to each other — the loopback soak
//! test round-trips every decision through them and compares against the
//! in-process `run_lanes` output for bit-identity.

use eventhit_core::infer::IntervalPrediction;
use eventhit_core::resilient::DegradationTag;
use eventhit_core::streaming::HorizonDecision;

use crate::protocol::{WireDecision, WireDegradation, WirePrediction};

/// Converts a core degradation tag to its wire image.
pub fn degradation_to_wire(tag: DegradationTag) -> WireDegradation {
    match tag {
        DegradationTag::None => WireDegradation::None,
        DegradationTag::Retried { retries } => WireDegradation::Retried(retries),
        DegradationTag::Dropped => WireDegradation::Dropped,
        DegradationTag::Deferred => WireDegradation::Deferred,
        DegradationTag::LocalOnly => WireDegradation::LocalOnly,
    }
}

/// Converts a wire degradation back to the core tag.
pub fn degradation_from_wire(tag: WireDegradation) -> DegradationTag {
    match tag {
        WireDegradation::None => DegradationTag::None,
        WireDegradation::Retried(retries) => DegradationTag::Retried { retries },
        WireDegradation::Dropped => DegradationTag::Dropped,
        WireDegradation::Deferred => DegradationTag::Deferred,
        WireDegradation::LocalOnly => DegradationTag::LocalOnly,
    }
}

/// Converts a relay decision to its wire image.
pub fn decision_to_wire(d: &HorizonDecision) -> WireDecision {
    WireDecision {
        anchor: d.anchor,
        degradation: degradation_to_wire(d.degradation),
        predictions: d
            .predictions
            .iter()
            .map(|p| WirePrediction {
                present: p.present,
                start: p.start,
                end: p.end,
            })
            .collect(),
    }
}

/// Reconstructs a relay decision from its wire image.
pub fn decision_from_wire(d: &WireDecision) -> HorizonDecision {
    HorizonDecision {
        anchor: d.anchor,
        degradation: degradation_from_wire(d.degradation),
        predictions: d
            .predictions
            .iter()
            .map(|p| IntervalPrediction {
                present: p.present,
                start: p.start,
                end: p.end,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_round_trip_through_the_wire_image() {
        let all_tags = [
            DegradationTag::None,
            DegradationTag::Retried { retries: 3 },
            DegradationTag::Dropped,
            DegradationTag::Deferred,
            DegradationTag::LocalOnly,
        ];
        for (i, tag) in all_tags.into_iter().enumerate() {
            let d = HorizonDecision {
                anchor: 1000 + i as u64,
                degradation: tag,
                predictions: vec![
                    IntervalPrediction {
                        present: true,
                        start: 2,
                        end: 9,
                    },
                    IntervalPrediction::absent(),
                ],
            };
            assert_eq!(decision_from_wire(&decision_to_wire(&d)), d);
        }
    }
}
