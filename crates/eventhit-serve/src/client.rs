//! The matching client library: a blocking, request/response view of one
//! serving session.
//!
//! [`ServeClient::connect`] performs the `Hello`/`HelloAck` handshake and
//! exposes the negotiated limits; every call then maps one request to one
//! reply. Server rejections are ordinary values ([`Response::Rejected`]),
//! not errors — backpressure (`QueueFull`, `TooManyStreams`) is part of
//! the protocol, and the caller decides whether to wait out the
//! `retry_after_ms` hint or give up. Only transport failures and protocol
//! violations surface as `io::Error`.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{
    read_message, write_message, Message, RejectCode, StreamSummary, WireCounter, WireDecision,
    WireSeries, WireSlo, PROTOCOL_MAJOR, PROTOCOL_MINOR,
};

/// The admission limits granted by the server at handshake time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Negotiated {
    /// Protocol minor version both ends agreed on.
    pub minor: u16,
    /// Server-wide cap on concurrently open streams.
    pub max_streams: u32,
    /// Largest batch one `SubmitFrames` may carry, in frames.
    pub max_batch_frames: u32,
    /// Per-stream ingest-queue bound, in frames.
    pub max_queue_frames: u32,
}

/// A server rejection, carried through [`Response::Rejected`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejection {
    /// Why the request was refused.
    pub code: RejectCode,
    /// Backpressure hint: milliseconds to wait before retrying (0 when a
    /// retry cannot succeed).
    pub retry_after_ms: u32,
    /// Human-readable detail from the server.
    pub detail: String,
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rejected ({}): {} [retry after {} ms]",
            self.code.label(),
            self.detail,
            self.retry_after_ms
        )
    }
}

/// Either the requested result or an in-protocol rejection.
#[derive(Debug, Clone, PartialEq)]
pub enum Response<T> {
    /// The request was served.
    Ok(T),
    /// The server refused the request; the session remains usable for
    /// non-fatal codes.
    Rejected(Rejection),
}

impl<T> Response<T> {
    /// Unwraps the served value, panicking on a rejection — convenient in
    /// tests and examples where a rejection is a bug.
    pub fn expect_ok(self, what: &str) -> T {
        match self {
            Response::Ok(v) => v,
            Response::Rejected(r) => panic!("{what}: {r}"),
        }
    }
}

/// The server's answer to a `Health` probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthInfo {
    /// Streams currently open across all sessions.
    pub active_streams: u32,
    /// Sessions served so far.
    pub sessions: u64,
    /// Frames consumed so far, all streams.
    pub frames: u64,
    /// Decisions emitted so far, all streams.
    pub decisions: u64,
}

/// The server's answer to a `MetricsQuery` (protocol minor ≥ 2): the
/// windowed time-series, counters, and SLO state a live dashboard polls.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsInfo {
    /// Server clock reading in seconds when the reply was built.
    pub clock_now: f64,
    /// Width in clock seconds of each series window.
    pub window_secs: f64,
    /// Every counter the server's recorder holds, sorted by
    /// `(name, label)`.
    pub counters: Vec<WireCounter>,
    /// Every windowed series, sorted by `(name, label)`.
    pub series: Vec<WireSeries>,
    /// Every registered SLO tracker, sorted by `(name, label)`.
    pub slos: Vec<WireSlo>,
}

impl MetricsInfo {
    /// The windowed series for the `label` series of `name`.
    pub fn series_for(&self, name: &str, label: &str) -> Option<&WireSeries> {
        self.series
            .iter()
            .find(|s| s.name == name && s.label == label)
    }
}

/// Typed payload of the `io::Error` a [`ServeClient`] returns when the
/// server vanishes mid-session (socket closed, reset, or broken pipe).
///
/// Carried as the error's source so callers can distinguish "the server
/// died — reconnect and [`ServeClient::resume_stream`]" from a protocol
/// violation; test with [`is_disconnected`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disconnected;

impl std::fmt::Display for Disconnected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "server disconnected mid-session")
    }
}

impl std::error::Error for Disconnected {}

/// True iff `err` is the typed disconnect a [`ServeClient`] raises when
/// the server drops the connection mid-session.
pub fn is_disconnected(err: &io::Error) -> bool {
    err.get_ref()
        .is_some_and(|inner| inner.downcast_ref::<Disconnected>().is_some())
}

fn disconnected() -> io::Error {
    io::Error::new(io::ErrorKind::ConnectionAborted, Disconnected)
}

/// One blocking client session.
pub struct ServeClient {
    sock: TcpStream,
    negotiated: Negotiated,
}

impl ServeClient {
    /// Connects and performs the handshake. Fails with
    /// `io::ErrorKind::ConnectionRefused` if the server rejects the
    /// protocol version.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ServeClient> {
        let sock = TcpStream::connect(addr)?;
        let mut chan = &sock;
        write_message(
            &mut chan,
            &Message::Hello {
                major: PROTOCOL_MAJOR,
                minor: PROTOCOL_MINOR,
            },
        )?;
        match read_message(&mut chan)? {
            Some(Message::HelloAck {
                minor,
                max_streams,
                max_batch_frames,
                max_queue_frames,
                ..
            }) => {
                let negotiated = Negotiated {
                    minor,
                    max_streams,
                    max_batch_frames,
                    max_queue_frames,
                };
                Ok(ServeClient { sock, negotiated })
            }
            Some(Message::Rejected { code, detail, .. }) => Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("handshake rejected ({}): {detail}", code.label()),
            )),
            other => Err(unexpected(other)),
        }
    }

    /// The limits granted at handshake time.
    pub fn negotiated(&self) -> Negotiated {
        self.negotiated
    }

    /// One request, one reply. A transport-level failure (EOF, reset,
    /// broken pipe) is normalized into the typed [`Disconnected`] error;
    /// protocol violations pass through unchanged.
    fn call(&mut self, msg: &Message) -> io::Result<Message> {
        let mut chan = &self.sock;
        let normalize = |e: io::Error| {
            let gone = matches!(
                e.kind(),
                io::ErrorKind::UnexpectedEof
                    | io::ErrorKind::ConnectionReset
                    | io::ErrorKind::ConnectionAborted
                    | io::ErrorKind::BrokenPipe
            );
            if gone {
                disconnected()
            } else {
                e
            }
        };
        write_message(&mut chan, msg).map_err(normalize)?;
        match read_message(&mut chan).map_err(normalize)? {
            Some(reply) => Ok(reply),
            None => Err(disconnected()),
        }
    }

    /// Opens a stream under a client-chosen id.
    pub fn open_stream(&mut self, stream_id: u32) -> io::Result<Response<()>> {
        match self.call(&Message::OpenStream { stream_id })? {
            Message::StreamOpened { stream_id: sid } if sid == stream_id => Ok(Response::Ok(())),
            Message::Rejected {
                code,
                retry_after_ms,
                detail,
            } => Ok(Response::Rejected(Rejection {
                code,
                retry_after_ms,
                detail,
            })),
            other => Err(unexpected(Some(other))),
        }
    }

    /// Submits a row-major batch of feature rows (`data.len()` must be a
    /// multiple of `dim`) and returns the decisions it produced — possibly
    /// none, since decisions fire once per horizon.
    pub fn submit(
        &mut self,
        stream_id: u32,
        dim: u32,
        data: Vec<f32>,
    ) -> io::Result<Response<Vec<WireDecision>>> {
        match self.call(&Message::SubmitFrames {
            stream_id,
            dim,
            data,
        })? {
            Message::Decisions {
                stream_id: sid,
                decisions,
            } if sid == stream_id => Ok(Response::Ok(decisions)),
            Message::Rejected {
                code,
                retry_after_ms,
                detail,
            } => Ok(Response::Rejected(Rejection {
                code,
                retry_after_ms,
                detail,
            })),
            other => Err(unexpected(Some(other))),
        }
    }

    /// Like [`ServeClient::submit`], but stamping the batch with a
    /// client-assigned trace id (protocol minor ≥ 2). The server threads
    /// the id through its stage histograms and slow-decision log, and
    /// must echo it bit-exactly on the reply; an echo mismatch is a
    /// protocol violation and surfaces as `io::ErrorKind::InvalidData`.
    pub fn submit_traced(
        &mut self,
        stream_id: u32,
        trace_id: u64,
        dim: u32,
        data: Vec<f32>,
    ) -> io::Result<Response<Vec<WireDecision>>> {
        match self.call(&Message::SubmitTraced {
            trace_id,
            stream_id,
            dim,
            data,
        })? {
            Message::TracedDecisions {
                trace_id: echoed,
                stream_id: sid,
                decisions,
            } if sid == stream_id => {
                if echoed != trace_id {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("trace id echo mismatch: sent {trace_id:#x}, got {echoed:#x}"),
                    ));
                }
                Ok(Response::Ok(decisions))
            }
            Message::Rejected {
                code,
                retry_after_ms,
                detail,
            } => Ok(Response::Rejected(Rejection {
                code,
                retry_after_ms,
                detail,
            })),
            other => Err(unexpected(Some(other))),
        }
    }

    /// Fetches the server's windowed time-series, counters, and SLO
    /// state (protocol minor ≥ 2) — the typed feed behind
    /// `eventhit-cli top`.
    pub fn metrics(&mut self) -> io::Result<MetricsInfo> {
        match self.call(&Message::MetricsQuery)? {
            Message::MetricsReply {
                clock_now,
                window_secs,
                counters,
                series,
                slos,
            } => Ok(MetricsInfo {
                clock_now,
                window_secs,
                counters,
                series,
                slos,
            }),
            other => Err(unexpected(Some(other))),
        }
    }

    /// Re-attaches to a stream held in the server's durable state
    /// (protocol minor ≥ 1). `last_seq` is the number of frames this
    /// client believes were accepted; on success the server returns the
    /// authoritative `next_seq` — continue submitting the stream's rows
    /// from that absolute index.
    pub fn resume_stream(&mut self, stream_id: u32, last_seq: u64) -> io::Result<Response<u64>> {
        match self.call(&Message::Resume {
            stream_id,
            last_seq,
        })? {
            Message::Resumed {
                stream_id: sid,
                next_seq,
            } if sid == stream_id => Ok(Response::Ok(next_seq)),
            Message::Rejected {
                code,
                retry_after_ms,
                detail,
            } => Ok(Response::Rejected(Rejection {
                code,
                retry_after_ms,
                detail,
            })),
            other => Err(unexpected(Some(other))),
        }
    }

    /// Closes a stream, returning its lifetime totals.
    pub fn close_stream(&mut self, stream_id: u32) -> io::Result<Response<StreamSummary>> {
        match self.call(&Message::CloseStream { stream_id })? {
            Message::StreamClosed {
                stream_id: sid,
                summary,
            } if sid == stream_id => Ok(Response::Ok(summary)),
            Message::Rejected {
                code,
                retry_after_ms,
                detail,
            } => Ok(Response::Rejected(Rejection {
                code,
                retry_after_ms,
                detail,
            })),
            other => Err(unexpected(Some(other))),
        }
    }

    /// Probes server liveness and load.
    pub fn health(&mut self) -> io::Result<HealthInfo> {
        match self.call(&Message::Health)? {
            Message::HealthReport {
                active_streams,
                sessions,
                frames,
                decisions,
            } => Ok(HealthInfo {
                active_streams,
                sessions,
                frames,
                decisions,
            }),
            other => Err(unexpected(Some(other))),
        }
    }

    /// Fetches the server's telemetry snapshot as canonical JSONL (empty
    /// when the server runs without a recorder).
    pub fn telemetry_jsonl(&mut self) -> io::Result<String> {
        match self.call(&Message::TelemetryQuery)? {
            Message::TelemetryReport { jsonl } => Ok(jsonl),
            other => Err(unexpected(Some(other))),
        }
    }
}

fn unexpected(msg: Option<Message>) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        match msg {
            Some(m) => format!("unexpected reply tag 0x{:02x}", m.tag()),
            None => "connection closed during handshake".into(),
        },
    )
}
