//! The deterministic synthetic-fleet load harness behind
//! `eventhit-cli bench-fleet`.
//!
//! A fleet run drives hundreds to thousands of synthetic streams against
//! a live server over real loopback sockets, with a deterministic
//! *arrival schedule*: every stream's identity, feature rows, and arrival
//! slot are pure functions of the run's seed and spec, so the decision
//! set a run produces is bit-identical to the in-process `run_lanes`
//! baseline (wall-clock effects — rejects, retries, latency — vary, and
//! are exactly what the harness measures).
//!
//! Arrivals come in two patterns: [`ArrivalPattern::Uniform`] spaces
//! streams one slot apart, and [`ArrivalPattern::Bursty`] drives the
//! slots from a Gilbert–Elliott chain (the `eventhit-core` fault
//! injector), packing whole outage-style bursts of streams into the same
//! slot — the arrival shape that saturates per-shard admission and makes
//! `TooManyStreams` rejects and retry-after behavior observable.
//!
//! The harness reports what the serving plane itself measures: admission
//! rejects and honored retry-after hints from the driver side, and
//! per-stage latency quantiles from the minor-2 `MetricsQuery` plane via
//! [`summarize_stages`].

use std::collections::VecDeque;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use eventhit_core::faults::{FaultConfig, FaultInjector};

use crate::client::{MetricsInfo, Response, ServeClient};
use crate::protocol::{RejectCode, WireDecision};

/// How fleet arrivals are spread over the slot axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalPattern {
    /// One arrival per slot: steady offered load.
    Uniform,
    /// Gilbert–Elliott bursts: while the chain is in its Bad state,
    /// consecutive arrivals share a slot, producing the correlated
    /// arrival clumps that saturate a shard's admission slice.
    Bursty,
}

/// Spec of one fleet run. Everything that affects *which decisions* are
/// produced is in here plus the feature rows; wall-clock pacing knobs
/// (`slot_micros`, `retry_cap_ms`) only shape the offered load.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Number of synthetic streams (ids `0..streams`).
    pub streams: u32,
    /// Concurrent driver sessions (connections); stream `s` is driven by
    /// session `s % sessions`.
    pub sessions: usize,
    /// Streams each session holds open concurrently (its admission
    /// window); `sessions * window` above the server's cap is what makes
    /// saturation observable.
    pub window: usize,
    /// Frames per `SubmitFrames` batch.
    pub batch: usize,
    /// Batches submitted per stream (`batch * rounds` frames total).
    pub rounds: usize,
    /// Arrival shape over the slot axis.
    pub pattern: ArrivalPattern,
    /// Seed of the bursty arrival chain (ignored for uniform arrivals).
    pub seed: u64,
    /// Wall-clock width of one arrival slot, in microseconds.
    pub slot_micros: u64,
    /// Cap on how long a driver honors a `retry_after_ms` hint before
    /// retrying, in milliseconds (keeps saturated runs fast).
    pub retry_cap_ms: u64,
}

impl Default for FleetSpec {
    fn default() -> Self {
        FleetSpec {
            streams: 1024,
            sessions: 8,
            window: 4,
            batch: 64,
            rounds: 4,
            pattern: ArrivalPattern::Uniform,
            seed: 1,
            slot_micros: 100,
            retry_cap_ms: 2,
        }
    }
}

impl FleetSpec {
    /// Frames each stream submits over its lifetime.
    pub fn frames_per_stream(&self) -> usize {
        self.batch * self.rounds
    }
}

/// What one fleet run observed, aggregated across driver sessions.
#[derive(Debug, Clone, Default)]
pub struct FleetReport {
    /// Streams driven to completion.
    pub streams_driven: u64,
    /// Frames accepted by the server.
    pub frames_sent: u64,
    /// Every decision served, sorted by `(anchor, stream_id)` — the same
    /// global order `run_lanes` returns, so divergence checks are a
    /// straight comparison.
    pub decisions: Vec<(u32, WireDecision)>,
    /// `TooManyStreams` rejections observed on `OpenStream`.
    pub admission_rejects: u64,
    /// `QueueFull` rejections observed on `SubmitFrames`.
    pub queue_rejects: u64,
    /// Sum of `retry_after_ms` hints the drivers honored (after the
    /// `retry_cap_ms` cap), in milliseconds.
    pub retry_waited_ms: u64,
    /// Wall-clock duration of the drive, in seconds.
    pub elapsed_seconds: f64,
}

/// The arrival slot of every stream, in stream-id order; slots are
/// non-decreasing. A pure function of `(streams, pattern, seed)`.
pub fn arrival_slots(streams: u32, pattern: ArrivalPattern, seed: u64) -> Vec<u64> {
    match pattern {
        ArrivalPattern::Uniform => (0..streams as u64).collect(),
        ArrivalPattern::Bursty => {
            // Gilbert–Elliott chain with total loss in Bad: an attempt
            // that "fails" is a burst member and shares the current slot;
            // a success opens the next slot. Sticky Bad state (0.25
            // recovery) gives bursts of ~4 arrivals.
            let cfg = FaultConfig {
                p_good_to_bad: 0.1,
                p_bad_to_good: 0.25,
                bad_loss: 1.0,
                ..FaultConfig::reliable()
            };
            let mut chain = FaultInjector::new(cfg, seed);
            let mut slot = 0u64;
            (0..streams)
                .map(|_| {
                    if chain.attempt(0.0).is_success() {
                        slot += 1;
                    }
                    slot
                })
                .collect()
        }
    }
}

/// The row the synthetic stream `stream` starts at inside the shared
/// feature pool of `total_rows` rows. Streams wrap around the pool, each
/// from its own offset, so a fleet of thousands of distinct streams is
/// regenerated from one extracted feature matrix — the same
/// seed-regeneration trick `bench-client` uses, shared here so the
/// `run_lanes` divergence baseline reproduces every stream exactly.
pub fn stream_row_start(stream: u32, total_rows: usize) -> usize {
    assert!(total_rows > 0, "the feature pool cannot be empty");
    (stream as usize).wrapping_mul(17) % total_rows
}

/// The `r`-th feature row of synthetic stream `stream`, borrowed from the
/// shared pool.
pub fn stream_row(rows: &[Vec<f32>], stream: u32, r: usize) -> &[f32] {
    &rows[(stream_row_start(stream, rows.len()) + r) % rows.len()]
}

/// Per-stage latency summary extracted from a `MetricsReply`: sample
/// counts plus the worst per-window quantiles over the series ring.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSummary {
    /// Metric name (`serve.stage_seconds`, `serve.decision_seconds`, …).
    pub name: String,
    /// Stage label (`session_read`, `queue_wait`, …; empty when the
    /// series is unlabeled).
    pub label: String,
    /// Samples across every retained window.
    pub count: u64,
    /// Worst per-window median, in seconds.
    pub p50_peak: f64,
    /// Worst per-window 99th percentile, in seconds.
    pub p99_peak: f64,
}

/// Summarizes every `serve.*_seconds` series in a metrics reply into
/// per-stage counts and peak-window p50/p99 — the saturation numbers
/// `bench-fleet` publishes.
pub fn summarize_stages(info: &MetricsInfo) -> Vec<StageSummary> {
    info.series
        .iter()
        .filter(|s| s.name.starts_with("serve.") && s.name.ends_with("_seconds"))
        .map(|s| {
            let mut count = 0;
            let mut p50_peak: f64 = 0.0;
            let mut p99_peak: f64 = 0.0;
            for w in &s.windows {
                if w.count == 0 {
                    continue;
                }
                count += w.count;
                p50_peak = p50_peak.max(w.p50);
                p99_peak = p99_peak.max(w.p99);
            }
            StageSummary {
                name: s.name.clone(),
                label: s.label.clone(),
                count,
                p50_peak,
                p99_peak,
            }
        })
        .collect()
}

/// Shared atomic tallies the driver sessions accumulate into.
#[derive(Default)]
struct Tallies {
    frames: AtomicU64,
    admission_rejects: AtomicU64,
    queue_rejects: AtomicU64,
    retry_waited_ms: AtomicU64,
}

/// Drives the whole fleet against the server at `addr` and returns the
/// aggregated report. `rows` is the shared feature pool every stream's
/// frames are drawn from (see [`stream_row`]); its row width must match
/// the serving model's input dimension.
///
/// Admission rejects are retried until the stream is admitted — every
/// session's open streams always run to completion and release their
/// slots, so the fleet always drains. Rejects and honored hints are
/// tallied, not hidden.
pub fn drive(addr: &str, rows: &[Vec<f32>], spec: &FleetSpec) -> io::Result<FleetReport> {
    assert!(spec.sessions > 0, "a fleet needs at least one session");
    assert!(spec.window > 0, "a session needs a nonzero stream window");
    assert!(spec.batch > 0, "batches cannot be empty");
    let slots = arrival_slots(spec.streams, spec.pattern, spec.seed);
    let tallies = Tallies::default();
    let start = Instant::now();
    let mut all: Vec<(u32, WireDecision)> = Vec::new();
    let session_results: Vec<io::Result<Vec<(u32, WireDecision)>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..spec.sessions)
            .map(|k| {
                let slots = &slots;
                let tallies = &tallies;
                scope.spawn(move || drive_session(addr, rows, spec, slots, k, start, tallies))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut streams_driven = 0u64;
    for r in session_results {
        let decisions = r?;
        streams_driven += decisions
            .iter()
            .map(|(s, _)| *s)
            .collect::<std::collections::BTreeSet<_>>()
            .len() as u64;
        all.extend(decisions);
    }
    // The global `run_lanes` order: anchor first, stream id second.
    all.sort_by_key(|(stream, d)| (d.anchor, *stream));
    Ok(FleetReport {
        streams_driven,
        frames_sent: tallies.frames.load(Ordering::Relaxed),
        decisions: all,
        admission_rejects: tallies.admission_rejects.load(Ordering::Relaxed),
        queue_rejects: tallies.queue_rejects.load(Ordering::Relaxed),
        retry_waited_ms: tallies.retry_waited_ms.load(Ordering::Relaxed),
        elapsed_seconds: start.elapsed().as_secs_f64(),
    })
}

/// One driver session: opens its streams in arrival order under a
/// sliding window, round-robins batches across the open set, and closes
/// each stream after its last round.
fn drive_session(
    addr: &str,
    rows: &[Vec<f32>],
    spec: &FleetSpec,
    slots: &[u64],
    session: usize,
    start: Instant,
    tallies: &Tallies,
) -> io::Result<Vec<(u32, WireDecision)>> {
    let mine: Vec<u32> = (0..spec.streams)
        .filter(|s| *s as usize % spec.sessions == session)
        .collect();
    if mine.is_empty() {
        return Ok(Vec::new());
    }
    let dim = rows[0].len() as u32;
    let mut client = ServeClient::connect(addr)?;
    let mut pending: VecDeque<u32> = mine.into();
    let mut open: VecDeque<(u32, usize)> = VecDeque::new(); // (stream, rounds done)
    let mut decisions: Vec<(u32, WireDecision)> = Vec::new();

    while !pending.is_empty() || !open.is_empty() {
        // Fill the window, honoring the arrival schedule. An admission
        // reject stops filling for this pass — the open streams below
        // keep making progress, which is what eventually frees capacity.
        while open.len() < spec.window && !pending.is_empty() {
            let s = *pending.front().unwrap();
            let due = Duration::from_micros(slots[s as usize].saturating_mul(spec.slot_micros));
            let since_start = start.elapsed();
            if since_start < due {
                std::thread::sleep(due - since_start);
            }
            match client.open_stream(s)? {
                Response::Ok(()) => {
                    pending.pop_front();
                    open.push_back((s, 0));
                }
                Response::Rejected(r) if r.code == RejectCode::TooManyStreams => {
                    tallies.admission_rejects.fetch_add(1, Ordering::Relaxed);
                    honor_hint(r.retry_after_ms, spec.retry_cap_ms, tallies);
                    break;
                }
                Response::Rejected(r) => {
                    return Err(io::Error::other(format!("open stream {s}: {r}")));
                }
            }
        }
        if open.is_empty() {
            continue; // everything rejected this pass; the hint wait above paced us
        }
        // One batch per open stream, oldest first; finished streams close
        // and leave the window.
        for _ in 0..open.len() {
            let (s, done) = open.pop_front().unwrap();
            let mut data = Vec::with_capacity(spec.batch * dim as usize);
            for r in done * spec.batch..(done + 1) * spec.batch {
                data.extend_from_slice(stream_row(rows, s, r));
            }
            loop {
                match client.submit(s, dim, data.clone())? {
                    Response::Ok(batch_decisions) => {
                        tallies
                            .frames
                            .fetch_add(spec.batch as u64, Ordering::Relaxed);
                        decisions.extend(batch_decisions.into_iter().map(|d| (s, d)));
                        break;
                    }
                    Response::Rejected(r) if r.code == RejectCode::QueueFull => {
                        tallies.queue_rejects.fetch_add(1, Ordering::Relaxed);
                        honor_hint(r.retry_after_ms, spec.retry_cap_ms, tallies);
                    }
                    Response::Rejected(r) => {
                        return Err(io::Error::other(format!("submit to stream {s}: {r}")));
                    }
                }
            }
            if done + 1 == spec.rounds {
                client.close_stream(s)?.expect_ok("close fleet stream");
            } else {
                open.push_back((s, done + 1));
            }
        }
    }
    Ok(decisions)
}

/// Sleeps out a server retry-after hint, capped, and tallies the wait.
fn honor_hint(hint_ms: u32, cap_ms: u64, tallies: &Tallies) {
    let wait = (hint_ms as u64).min(cap_ms);
    if wait > 0 {
        std::thread::sleep(Duration::from_millis(wait));
    }
    tallies.retry_waited_ms.fetch_add(wait, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_arrivals_are_one_per_slot() {
        assert_eq!(
            arrival_slots(5, ArrivalPattern::Uniform, 99),
            [0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn bursty_arrivals_are_deterministic_and_clumped() {
        let a = arrival_slots(2_000, ArrivalPattern::Bursty, 7);
        let b = arrival_slots(2_000, ArrivalPattern::Bursty, 7);
        assert_eq!(a, b, "same seed, same schedule");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "slots are monotone");
        let shared = a.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(
            shared > 100,
            "bursts must pack arrivals: {shared} shared slots"
        );
        assert_ne!(
            a,
            arrival_slots(2_000, ArrivalPattern::Bursty, 8),
            "different seed, different schedule"
        );
    }

    #[test]
    fn stream_rows_wrap_the_pool_deterministically() {
        let rows: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32]).collect();
        assert_eq!(stream_row_start(0, 10), 0);
        assert_eq!(stream_row_start(1, 10), 7);
        assert_eq!(stream_row_start(3, 10), 1);
        assert_eq!(stream_row(&rows, 1, 0), [7.0]);
        assert_eq!(stream_row(&rows, 1, 3), [0.0], "wraps at the pool edge");
        // The same (stream, r) always resolves the same row.
        for s in 0..50u32 {
            for r in 0..30 {
                assert_eq!(stream_row(&rows, s, r), stream_row(&rows, s, r));
            }
        }
    }

    #[test]
    fn stage_summary_takes_peak_window_quantiles() {
        use crate::protocol::{WireSeries, WireWindow};
        let info = MetricsInfo {
            clock_now: 5.0,
            window_secs: 1.0,
            counters: vec![],
            series: vec![
                WireSeries {
                    name: "serve.decision_seconds".into(),
                    label: String::new(),
                    windows: vec![
                        WireWindow {
                            index: 0,
                            count: 4,
                            sum: 0.4,
                            p50: 0.01,
                            p99: 0.02,
                        },
                        WireWindow {
                            index: 1,
                            count: 0,
                            sum: 0.0,
                            p50: 9.0,
                            p99: 9.0,
                        },
                        WireWindow {
                            index: 2,
                            count: 6,
                            sum: 0.9,
                            p50: 0.03,
                            p99: 0.05,
                        },
                    ],
                },
                WireSeries {
                    name: "stream.stage_seconds".into(),
                    label: "inference".into(),
                    windows: vec![],
                },
            ],
            slos: vec![],
        };
        let stages = summarize_stages(&info);
        assert_eq!(stages.len(), 1, "only serve.* series are summarized");
        let s = &stages[0];
        assert_eq!((s.count, s.p50_peak, s.p99_peak), (10, 0.03, 0.05));
        assert_eq!(s.name, "serve.decision_seconds");
    }
}
