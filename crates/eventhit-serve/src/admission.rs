//! Admission control and per-stream ingest bounds.
//!
//! Three mechanisms keep the server's memory proportional to its
//! configuration instead of its traffic:
//!
//! 1. [`AdmissionController`] — a per-shard cap on concurrently open
//!    streams. `OpenStream` beyond the owning shard's cap is rejected
//!    with `TooManyStreams` and a retry-after hint; slots are released on
//!    `CloseStream` *and* when a session dies mid-stream, so a crashed
//!    client can never leak capacity. An unsharded server is simply the
//!    one-shard case.
//! 2. [`FrameQueue`] — a bounded per-stream staging buffer between the
//!    socket and the predictor. A batch that does not fit is rejected
//!    whole with `QueueFull` (explicit backpressure: the client holds the
//!    data and retries after the hint), never buffered unboundedly.
//! 3. [`ServeTotals`] — the cross-shard aggregate: lifetime totals served
//!    by `Health` queries plus the live stream count behind the
//!    `serve.active_streams` gauge, so dashboards keep one fleet-wide
//!    number no matter how many shards sit underneath.
//!
//! All three are plain counters — no clocks, no threads — so the
//! admission decisions a test observes are a pure function of the
//! request sequence.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use eventhit_telemetry::Telemetry;

/// One shard's admission state: the open-stream cap and the live count.
///
/// All methods take `&self`; the controller is shared across session
/// threads behind an `Arc`.
#[derive(Debug)]
pub struct AdmissionController {
    max_streams: u32,
    active: AtomicU32,
}

impl AdmissionController {
    /// A controller admitting at most `max_streams` concurrent streams.
    pub fn new(max_streams: u32) -> Self {
        AdmissionController {
            max_streams,
            active: AtomicU32::new(0),
        }
    }

    /// The configured stream cap.
    pub fn max_streams(&self) -> u32 {
        self.max_streams
    }

    /// Tries to claim one stream slot. Returns `false` when the shard is
    /// at capacity; on `true` the caller owes a matching [`release`].
    ///
    /// [`release`]: AdmissionController::release
    pub fn try_admit(&self) -> bool {
        let mut cur = self.active.load(Ordering::Relaxed);
        loop {
            if cur >= self.max_streams {
                return false;
            }
            match self.active.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Returns one stream slot claimed by [`try_admit`].
    ///
    /// [`try_admit`]: AdmissionController::try_admit
    pub fn release(&self) {
        let prev = self.active.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "release without a matching admit");
    }

    /// Streams currently open on this shard.
    pub fn active(&self) -> u32 {
        self.active.load(Ordering::Acquire)
    }
}

/// Cross-shard aggregate state: lifetime totals behind `Health` plus the
/// fleet-wide live stream count behind the `serve.active_streams` gauge.
///
/// One instance per server, shared by every shard; shard-local capacity
/// decisions never touch it, so it is a pure observer of the fleet.
#[derive(Debug, Default)]
pub struct ServeTotals {
    active: AtomicU32,
    sessions: AtomicU64,
    frames: AtomicU64,
    decisions: AtomicU64,
}

impl ServeTotals {
    /// A zeroed aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one stream attaching (slot claimed on some shard); returns
    /// the new fleet-wide live count.
    pub fn stream_attached(&self) -> u32 {
        self.active.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Records one stream detaching; returns the new fleet-wide count.
    pub fn stream_detached(&self) -> u32 {
        let prev = self.active.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "detach without a matching attach");
        prev - 1
    }

    /// Streams currently open across all shards and sessions.
    pub fn active(&self) -> u32 {
        self.active.load(Ordering::Acquire)
    }

    /// Records the start of a session; returns the new session total.
    pub fn session_started(&self) -> u64 {
        self.sessions.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Adds to the lifetime frame total.
    pub fn add_frames(&self, n: u64) {
        self.frames.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds to the lifetime decision total.
    pub fn add_decisions(&self, n: u64) {
        self.decisions.fetch_add(n, Ordering::Relaxed);
    }

    /// Lifetime totals `(sessions, frames, decisions)`.
    pub fn totals(&self) -> (u64, u64, u64) {
        (
            self.sessions.load(Ordering::Relaxed),
            self.frames.load(Ordering::Relaxed),
            self.decisions.load(Ordering::Relaxed),
        )
    }
}

/// RAII ownership of one admitted stream slot.
///
/// Holding a `SlotGuard` *is* holding the slot: [`SlotGuard::claim`]
/// pairs the owning shard's `try_admit` with updates to that shard's
/// `serve.shard{N}.active_streams` gauge *and* the cross-shard
/// `serve.active_streams` aggregate, and dropping the guard pairs the
/// `release` with the matching updates. Every exit path — clean close,
/// session teardown, durable park, even an error return between
/// admission and lane insertion — releases the slot and keeps both
/// gauges honest by construction.
#[derive(Debug)]
pub struct SlotGuard {
    admission: Arc<AdmissionController>,
    totals: Arc<ServeTotals>,
    telemetry: Arc<Telemetry>,
    shard_gauge: &'static str,
}

/// Name of the cross-shard aggregate gauge: the fleet-wide live stream
/// count `eventhit-cli top` and the telemetry tests read.
pub const ACTIVE_STREAMS_GAUGE: &str = "serve.active_streams";

impl SlotGuard {
    /// Tries to claim one stream slot on `admission` (the owning shard's
    /// controller), updating the shard's `shard_gauge` and the aggregate
    /// [`ACTIVE_STREAMS_GAUGE`] on success. `None` means the shard is at
    /// capacity.
    pub fn claim(
        admission: &Arc<AdmissionController>,
        totals: &Arc<ServeTotals>,
        telemetry: &Arc<Telemetry>,
        shard_gauge: &'static str,
    ) -> Option<Self> {
        if !admission.try_admit() {
            return None;
        }
        totals.stream_attached();
        let guard = SlotGuard {
            admission: Arc::clone(admission),
            totals: Arc::clone(totals),
            telemetry: Arc::clone(telemetry),
            shard_gauge,
        };
        guard.record_gauges();
        Some(guard)
    }

    fn record_gauges(&self) {
        self.telemetry
            .gauge_set(self.shard_gauge, self.admission.active() as f64);
        self.telemetry
            .gauge_set(ACTIVE_STREAMS_GAUGE, self.totals.active() as f64);
    }
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.admission.release();
        self.totals.stream_detached();
        self.record_gauges();
    }
}

/// A bounded FIFO of feature rows between the wire and one stream's
/// predictor. Batches are admitted whole or not at all, so a rejected
/// client never has to guess how much of its batch survived.
#[derive(Debug)]
pub struct FrameQueue {
    rows: VecDeque<Vec<f32>>,
    capacity: usize,
}

impl FrameQueue {
    /// A queue holding at most `capacity` frames.
    pub fn new(capacity: usize) -> Self {
        FrameQueue {
            rows: VecDeque::new(),
            capacity,
        }
    }

    /// Frames the queue can still accept.
    pub fn free(&self) -> usize {
        self.capacity - self.rows.len()
    }

    /// Frames currently queued.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Enqueues a whole batch of rows, or rejects it untouched when it
    /// does not fit; the error is the number of frames that would not fit.
    pub fn try_enqueue(&mut self, batch: Vec<Vec<f32>>) -> Result<(), usize> {
        if batch.len() > self.free() {
            return Err(batch.len() - self.free());
        }
        self.rows.extend(batch);
        Ok(())
    }

    /// Dequeues the oldest frame.
    pub fn pop(&mut self) -> Option<Vec<f32>> {
        self.rows.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_caps_and_releases() {
        let a = AdmissionController::new(2);
        assert!(a.try_admit());
        assert!(a.try_admit());
        assert!(!a.try_admit(), "third stream must be refused");
        assert_eq!(a.active(), 2);
        a.release();
        assert!(a.try_admit(), "released slot must be reusable");
    }

    #[test]
    fn totals_accumulate_across_shards() {
        let t = ServeTotals::new();
        assert_eq!(t.session_started(), 1);
        assert_eq!(t.session_started(), 2);
        t.add_frames(10);
        t.add_decisions(3);
        t.add_frames(5);
        assert_eq!(t.totals(), (2, 15, 3));
        assert_eq!(t.stream_attached(), 1);
        assert_eq!(t.stream_attached(), 2);
        assert_eq!(t.stream_detached(), 1);
        assert_eq!(t.active(), 1);
    }

    #[test]
    fn slot_guard_releases_on_every_drop_path() {
        let a = Arc::new(AdmissionController::new(1));
        let totals = Arc::new(ServeTotals::new());
        let t = Arc::new(Telemetry::with_manual_clock());
        let g = SlotGuard::claim(&a, &totals, &t, "serve.shard0.active_streams").expect("slot");
        assert!(
            SlotGuard::claim(&a, &totals, &t, "serve.shard0.active_streams").is_none(),
            "cap reached"
        );
        assert_eq!(a.active(), 1);
        assert_eq!(totals.active(), 1);
        drop(g);
        assert_eq!(a.active(), 0);
        assert_eq!(totals.active(), 0);
        // Both the per-shard gauge and the aggregate saw the claim (1)
        // and the release (0).
        let snap = t.snapshot();
        for name in ["serve.shard0.active_streams", ACTIVE_STREAMS_GAUGE] {
            let gauge = snap.gauge(name).unwrap_or_else(|| panic!("gauge {name}"));
            assert_eq!(
                (gauge.last, gauge.max, gauge.samples),
                (0.0, 1.0, 2),
                "{name}"
            );
        }
    }

    #[test]
    fn shard_guards_share_one_aggregate() {
        // Two shards, one aggregate: each shard caps independently while
        // the fleet-wide count sums both.
        let shard0 = Arc::new(AdmissionController::new(1));
        let shard1 = Arc::new(AdmissionController::new(1));
        let totals = Arc::new(ServeTotals::new());
        let t = Arc::new(Telemetry::with_manual_clock());
        let g0 = SlotGuard::claim(&shard0, &totals, &t, "serve.shard0.active_streams").unwrap();
        let g1 = SlotGuard::claim(&shard1, &totals, &t, "serve.shard1.active_streams").unwrap();
        assert!(
            SlotGuard::claim(&shard0, &totals, &t, "serve.shard0.active_streams").is_none(),
            "shard 0 is full even though shard 1 has capacity counted elsewhere"
        );
        assert_eq!(totals.active(), 2);
        let agg = t.snapshot().gauge(ACTIVE_STREAMS_GAUGE).unwrap();
        assert_eq!((agg.last, agg.max), (2.0, 2.0));
        drop(g0);
        drop(g1);
        assert_eq!(totals.active(), 0);
    }

    #[test]
    fn queue_admits_whole_batches_only() {
        let mut q = FrameQueue::new(4);
        assert!(q.try_enqueue(vec![vec![1.0]; 3]).is_ok());
        assert_eq!(q.free(), 1);
        // A 2-frame batch overflows by 1 and must leave the queue alone.
        assert_eq!(q.try_enqueue(vec![vec![2.0]; 2]), Err(1));
        assert_eq!(q.len(), 3);
        assert!(q.try_enqueue(vec![vec![3.0]]).is_ok());
        assert_eq!(q.free(), 0);
        // Draining restores capacity.
        let mut n = 0;
        while q.pop().is_some() {
            n += 1;
        }
        assert_eq!(n, 4);
        assert!(q.is_empty());
        assert_eq!(q.free(), 4);
    }
}
