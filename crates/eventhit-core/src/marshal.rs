//! The online marshaller: walks a live stream horizon by horizon, predicts
//! with a trained model + conformal state, relays only the predicted
//! occurrence intervals to the (simulated) CI, and reports what the CI
//! detected and what it cost — the deployment loop of Fig. 1.

use eventhit_video::records::extract_record;
use eventhit_video::stream::VideoStream;

use eventhit_nn::matrix::Matrix;

use crate::ci::{CiConfig, CostReport};
use crate::infer::score_records;
use crate::model::EventHit;
use crate::pipeline::{ConformalState, Strategy};

/// A contiguous run of absolute stream frames relayed to the CI for one
/// event type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelaySegment {
    /// Event index within the task.
    pub event: usize,
    /// First absolute frame relayed.
    pub start: u64,
    /// Last absolute frame relayed (inclusive).
    pub end: u64,
}

/// A CI detection: the portion of a true event instance that was covered by
/// relayed frames (the CI is an oracle on the frames it receives).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Detection {
    /// Event index within the task.
    pub event: usize,
    /// First detected frame.
    pub start: u64,
    /// Last detected frame (inclusive).
    pub end: u64,
}

/// Outcome of marshalling a stream region.
#[derive(Debug, Clone)]
pub struct MarshalResult {
    /// Segments relayed to the CI, in stream order.
    pub segments: Vec<RelaySegment>,
    /// Event frames the CI detected.
    pub detections: Vec<Detection>,
    /// True event instances in the walked region, per event
    /// `(event, start, end)`.
    pub ground_truth: Vec<(usize, u64, u64)>,
    /// Number of prediction episodes (horizons walked).
    pub horizons: usize,
    /// Cost accounting.
    pub cost: CostReport,
}

impl MarshalResult {
    /// Fraction of true event frames the CI received (end-to-end recall of
    /// the deployment loop).
    pub fn frame_recall(&self) -> f64 {
        let total: u64 = self.ground_truth.iter().map(|&(_, s, e)| e - s + 1).sum();
        if total == 0 {
            return 1.0;
        }
        let detected: u64 = self.detections.iter().map(|d| d.end - d.start + 1).sum();
        detected as f64 / total as f64
    }

    /// Fraction of event *instances* with at least one detected frame.
    pub fn instance_recall(&self) -> f64 {
        if self.ground_truth.is_empty() {
            return 1.0;
        }
        let found = self
            .ground_truth
            .iter()
            .filter(|&&(k, s, e)| {
                self.detections
                    .iter()
                    .any(|d| d.event == k && d.start <= e && d.end >= s)
            })
            .count();
        found as f64 / self.ground_truth.len() as f64
    }
}

/// The online marshaller. Owns the trained model and calibration state.
pub struct Marshaller {
    model: EventHit,
    state: ConformalState,
    strategy: Strategy,
    window: usize,
    horizon: usize,
    ci: CiConfig,
}

impl Marshaller {
    /// Assembles a marshaller from trained components.
    pub fn new(
        model: EventHit,
        state: ConformalState,
        strategy: Strategy,
        window: usize,
        horizon: usize,
        ci: CiConfig,
    ) -> Self {
        Marshaller {
            model,
            state,
            strategy,
            window,
            horizon,
            ci,
        }
    }

    /// Changes the operating strategy (e.g. to retune `c`/`α` online).
    pub fn set_strategy(&mut self, strategy: Strategy) {
        self.strategy = strategy;
    }

    /// Walks `[from, to)` of the stream with non-overlapping horizons,
    /// predicting at each anchor and relaying predicted intervals.
    ///
    /// The decision uses only the covariates (features of the collection
    /// window); ground truth is consulted solely to simulate the oracle CI
    /// and to report recall.
    pub fn run(
        &mut self,
        stream: &VideoStream,
        features: &Matrix,
        from: u64,
        to: u64,
    ) -> MarshalResult {
        assert!(
            from >= self.window as u64,
            "need a full collection window before `from`"
        );
        assert!(to <= stream.len, "`to` beyond stream end");

        let mut segments = Vec::new();
        let mut detections = Vec::new();
        let mut ground_truth = Vec::new();
        let mut horizons = 0usize;
        let mut frames_relayed = 0u64;

        let mut anchor = from;
        while anchor + self.horizon as u64 <= to {
            horizons += 1;
            let record = extract_record(stream, features, anchor, self.window, self.horizon);
            let scored = score_records(&mut self.model, std::slice::from_ref(&record), 1);
            let preds = self.state.predict(&scored[0], &self.strategy);

            // A relayed frame is paid for once even when several events'
            // intervals overlap: the CI call covers all event models.
            frames_relayed += crate::metrics::union_frames(&preds);

            for (k, pred) in preds.iter().enumerate() {
                // Record ground truth for this horizon/event.
                if record.labels[k].present {
                    ground_truth.push((
                        k,
                        anchor + record.labels[k].start as u64,
                        anchor + record.labels[k].end as u64,
                    ));
                }
                if !pred.present {
                    continue;
                }
                let seg_start = anchor + pred.start as u64;
                let seg_end = anchor + pred.end as u64;
                segments.push(RelaySegment {
                    event: k,
                    start: seg_start,
                    end: seg_end,
                });

                // Oracle CI: detects the overlap with true instances.
                for inst in stream.all_intersecting(k, seg_start, seg_end) {
                    detections.push(Detection {
                        event: k,
                        start: inst.interval.start.max(seg_start),
                        end: inst.interval.end.min(seg_end),
                    });
                }
            }
            anchor += self.horizon as u64;
        }

        let cost = self.ci.account(
            horizons,
            self.window,
            self.horizon,
            frames_relayed,
            // Online per-horizon predictor cost is negligible relative to
            // the CI; account a conservative 1 ms per horizon.
            horizons as f64 * 1e-3,
        );

        MarshalResult {
            segments,
            detections,
            ground_truth,
            horizons,
            cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{ExperimentConfig, TaskRun};
    use crate::tasks::task;

    fn build_marshaller() -> (Marshaller, TaskRun) {
        let run = TaskRun::execute(&task("TA10").unwrap(), &ExperimentConfig::quick(5));
        let m = Marshaller::new(
            // Re-create a model? The run's model is moved out here.
            // We clone conformal state and reuse the trained model.
            EventHit::new(run.model.config().clone(), 99),
            run.state.clone(),
            Strategy::Ehcr {
                c: 0.95,
                alpha: 0.9,
            },
            run.window,
            run.horizon,
            CiConfig::default(),
        );
        (m, run)
    }

    #[test]
    fn walks_expected_number_of_horizons() {
        let (mut m, run) = build_marshaller();
        let from = run.window as u64;
        let to = from + (run.horizon as u64) * 5 + 10;
        let result = m.run(&run.stream, &run.features, from, to);
        assert_eq!(result.horizons, 5);
        assert!(result.cost.frames_covered == (run.horizon as u64) * 5);
    }

    #[test]
    fn trained_marshaller_detects_events() {
        let run = TaskRun::execute(&task("TA10").unwrap(), &ExperimentConfig::quick(6));
        let window = run.window;
        let horizon = run.horizon;
        let stream = run.stream.clone();
        let features = run.features.clone();
        let mut m = Marshaller::new(
            run.model,
            run.state,
            Strategy::Ehcr { c: 0.9, alpha: 0.5 },
            window,
            horizon,
            CiConfig::default(),
        );
        let from = (stream.len * 3) / 4; // marshal the test region
        let result = m.run(&stream, &features, from, stream.len);
        // The walked region should contain some events and the high-recall
        // strategy should find a decent share of them.
        if !result.ground_truth.is_empty() {
            assert!(
                result.instance_recall() > 0.3,
                "instance recall {}",
                result.instance_recall()
            );
        }
        // Relaying can never exceed brute force.
        assert!(result.cost.frames_relayed <= result.cost.frames_covered);
    }

    #[test]
    fn recall_helpers_handle_empty_truth() {
        let empty = MarshalResult {
            segments: vec![],
            detections: vec![],
            ground_truth: vec![],
            horizons: 0,
            cost: CiConfig::default().account(0, 10, 100, 0, 0.0),
        };
        assert_eq!(empty.frame_recall(), 1.0);
        assert_eq!(empty.instance_recall(), 1.0);
    }

    #[test]
    fn strategy_can_be_retuned() {
        let (mut m, _) = build_marshaller();
        m.set_strategy(Strategy::Eho { tau1: 0.5 });
    }
}
