//! The online marshaller: walks a live stream horizon by horizon, predicts
//! with a trained model + conformal state, relays only the predicted
//! occurrence intervals to the (simulated) CI, and reports what the CI
//! detected and what it cost — the deployment loop of Fig. 1.

use std::sync::Arc;

use eventhit_telemetry::Telemetry;
use eventhit_video::records::extract_record;
use eventhit_video::stream::VideoStream;

use eventhit_nn::matrix::Matrix;

use crate::ci::{CiConfig, CostReport};
use crate::error::CoreError;
use crate::infer::score_records;
use crate::metrics::MissAttribution;
use crate::model::EventHit;
use crate::pipeline::{ConformalState, Strategy};
use crate::resilient::{
    DegradationMode, DegradationTag, FailReason, ResilienceStats, ResilientCiClient,
    SubmissionOutcome,
};

/// A contiguous run of absolute stream frames relayed to the CI for one
/// event type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelaySegment {
    /// Event index within the task.
    pub event: usize,
    /// First absolute frame relayed.
    pub start: u64,
    /// Last absolute frame relayed (inclusive).
    pub end: u64,
}

/// A CI detection: the portion of a true event instance that was covered by
/// relayed frames (the CI is an oracle on the frames it receives).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Detection {
    /// Event index within the task.
    pub event: usize,
    /// First detected frame.
    pub start: u64,
    /// Last detected frame (inclusive).
    pub end: u64,
}

/// Outcome of marshalling a stream region.
#[derive(Debug, Clone)]
pub struct MarshalResult {
    /// Segments relayed to the CI, in stream order.
    pub segments: Vec<RelaySegment>,
    /// Event frames the CI detected.
    pub detections: Vec<Detection>,
    /// True event instances in the walked region, per event
    /// `(event, start, end)`.
    pub ground_truth: Vec<(usize, u64, u64)>,
    /// Number of prediction episodes (horizons walked).
    pub horizons: usize,
    /// Cost accounting.
    pub cost: CostReport,
}

impl MarshalResult {
    /// Fraction of true event frames the CI received (end-to-end recall of
    /// the deployment loop).
    pub fn frame_recall(&self) -> f64 {
        let total: u64 = self.ground_truth.iter().map(|&(_, s, e)| e - s + 1).sum();
        if total == 0 {
            return 1.0;
        }
        let detected: u64 = self.detections.iter().map(|d| d.end - d.start + 1).sum();
        detected as f64 / total as f64
    }

    /// Fraction of event *instances* with at least one detected frame.
    pub fn instance_recall(&self) -> f64 {
        if self.ground_truth.is_empty() {
            return 1.0;
        }
        let found = self
            .ground_truth
            .iter()
            .filter(|&&(k, s, e)| {
                self.detections
                    .iter()
                    .any(|d| d.event == k && d.start <= e && d.end >= s)
            })
            .count();
        found as f64 / self.ground_truth.len() as f64
    }
}

/// The online marshaller. Owns the trained model and calibration state.
pub struct Marshaller {
    model: EventHit,
    state: ConformalState,
    strategy: Strategy,
    window: usize,
    horizon: usize,
    ci: CiConfig,
    telemetry: Option<Arc<Telemetry>>,
}

/// Stable label for a degradation tag (counter label on
/// `marshal.degradation`).
fn tag_label(tag: DegradationTag) -> &'static str {
    match tag {
        DegradationTag::None => "none",
        DegradationTag::Retried { .. } => "retried",
        DegradationTag::Dropped => "dropped",
        DegradationTag::Deferred => "deferred",
        DegradationTag::LocalOnly => "local_only",
    }
}

impl Marshaller {
    /// Assembles a marshaller from trained components.
    pub fn new(
        model: EventHit,
        state: ConformalState,
        strategy: Strategy,
        window: usize,
        horizon: usize,
        ci: CiConfig,
    ) -> Self {
        Marshaller {
            model,
            state,
            strategy,
            window,
            horizon,
            ci,
            telemetry: None,
        }
    }

    /// Changes the operating strategy (e.g. to retune `c`/`α` online).
    pub fn set_strategy(&mut self, strategy: Strategy) {
        self.strategy = strategy;
    }

    /// Attaches a telemetry recorder: runs record a `marshal.run` /
    /// `marshal.run_resilient` span, horizon and relayed-frame counters,
    /// and (on the resilient path) per-horizon degradation tags as the
    /// labeled `marshal.degradation` counter. Share the same recorder
    /// with the [`ResilientCiClient`] to see retries and breaker
    /// transitions on the same timeline.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.telemetry = Some(telemetry);
    }

    /// Walks `[from, to)` of the stream with non-overlapping horizons,
    /// predicting at each anchor and relaying predicted intervals.
    ///
    /// Panicking wrapper around [`Marshaller::try_run`], kept for call
    /// sites that treat a bad range as a programming error.
    pub fn run(
        &mut self,
        stream: &VideoStream,
        features: &Matrix,
        from: u64,
        to: u64,
    ) -> MarshalResult {
        self.try_run(stream, features, from, to)
            .unwrap_or_else(|e| panic!("marshal run failed: {e}"))
    }

    fn check_range(&self, stream: &VideoStream, from: u64, to: u64) -> Result<(), CoreError> {
        if from < self.window as u64 {
            return Err(CoreError::WindowUnderflow {
                from,
                window: self.window,
            });
        }
        if to > stream.len {
            return Err(CoreError::StreamBounds {
                to,
                len: stream.len,
            });
        }
        Ok(())
    }

    /// Fallible form of [`Marshaller::run`]: a range that does not leave
    /// room for the collection window, or that runs past the stream end,
    /// surfaces as a typed [`CoreError`] instead of an abort.
    ///
    /// The decision uses only the covariates (features of the collection
    /// window); ground truth is consulted solely to simulate the oracle CI
    /// and to report recall.
    pub fn try_run(
        &mut self,
        stream: &VideoStream,
        features: &Matrix,
        from: u64,
        to: u64,
    ) -> Result<MarshalResult, CoreError> {
        self.check_range(stream, from, to)?;
        let tel = self.telemetry.clone();
        let _run = tel.as_deref().map(|t| t.span("marshal.run"));

        let mut segments = Vec::new();
        let mut detections = Vec::new();
        let mut ground_truth = Vec::new();
        let mut horizons = 0usize;
        let mut frames_relayed = 0u64;

        let mut anchor = from;
        while anchor + self.horizon as u64 <= to {
            horizons += 1;
            let record = extract_record(stream, features, anchor, self.window, self.horizon);
            let scored = score_records(&self.model, std::slice::from_ref(&record), 1);
            let preds = self.state.predict(&scored[0], &self.strategy);

            // A relayed frame is paid for once even when several events'
            // intervals overlap: the CI call covers all event models.
            frames_relayed += crate::metrics::union_frames(&preds);

            for (k, pred) in preds.iter().enumerate() {
                // Record ground truth for this horizon/event.
                if record.labels[k].present {
                    ground_truth.push((
                        k,
                        anchor + record.labels[k].start as u64,
                        anchor + record.labels[k].end as u64,
                    ));
                }
                if !pred.present {
                    continue;
                }
                let seg_start = anchor + pred.start as u64;
                let seg_end = anchor + pred.end as u64;
                segments.push(RelaySegment {
                    event: k,
                    start: seg_start,
                    end: seg_end,
                });

                // Oracle CI: detects the overlap with true instances.
                for inst in stream.all_intersecting(k, seg_start, seg_end) {
                    detections.push(Detection {
                        event: k,
                        start: inst.interval.start.max(seg_start),
                        end: inst.interval.end.min(seg_end),
                    });
                }
            }
            anchor += self.horizon as u64;
        }

        if let Some(t) = tel.as_deref() {
            t.add("marshal.horizons", horizons as u64);
            t.add("marshal.frames_relayed", frames_relayed);
        }
        let cost = self.ci.account(
            horizons,
            self.window,
            self.horizon,
            frames_relayed,
            // Online per-horizon predictor cost is negligible relative to
            // the CI; account a conservative 1 ms per horizon.
            horizons as f64 * 1e-3,
        );

        Ok(MarshalResult {
            segments,
            detections,
            ground_truth,
            horizons,
            cost,
        })
    }

    /// Walks `[from, to)` like [`Marshaller::try_run`], but every
    /// horizon's relay passes through the resilient CI client: faults,
    /// retries, the circuit breaker, and the configured degradation
    /// policy all apply. One submission is issued per horizon (the union
    /// of the predicted intervals — a CI call covers all event models),
    /// timed on the simulated clock at `stream_fps`.
    ///
    /// Every ground-truth instance in the walked region is attributed to
    /// exactly one bucket of the returned [`MissAttribution`].
    pub fn run_resilient(
        &mut self,
        stream: &VideoStream,
        features: &Matrix,
        from: u64,
        to: u64,
        stream_fps: f64,
        client: &mut ResilientCiClient,
    ) -> Result<ResilientMarshalResult, CoreError> {
        self.check_range(stream, from, to)?;
        if !(stream_fps > 0.0 && stream_fps.is_finite()) {
            return Err(CoreError::InvalidConfig(format!(
                "stream_fps = {stream_fps} must be finite and positive"
            )));
        }

        let tel = self.telemetry.clone();
        let _run = tel.as_deref().map(|t| t.span("marshal.run_resilient"));

        let mut detections = Vec::new();
        let mut local_cover: Vec<(usize, u64, u64)> = Vec::new();
        let mut lost_segments: Vec<RelaySegment> = Vec::new();
        let mut ground_truth = Vec::new();
        let mut horizon_tags = Vec::new();
        let mut horizons = 0usize;
        let mut frames_relayed = 0u64;
        // Frames deferred by DeferNextHorizon, with the segments they
        // covered, awaiting one redelivery attempt.
        let mut deferred: Option<(u64, Vec<RelaySegment>)> = None;

        let mut anchor = from;
        while anchor + self.horizon as u64 <= to {
            horizons += 1;
            let record = extract_record(stream, features, anchor, self.window, self.horizon);
            let scored = score_records(&self.model, std::slice::from_ref(&record), 1);
            let preds = self.state.predict(&scored[0], &self.strategy);

            for (k, label) in record.labels.iter().enumerate() {
                if label.present {
                    ground_truth.push((k, anchor + label.start as u64, anchor + label.end as u64));
                }
            }

            let mut horizon_segments: Vec<RelaySegment> = Vec::new();
            for (k, pred) in preds.iter().enumerate() {
                if pred.present {
                    horizon_segments.push(RelaySegment {
                        event: k,
                        start: anchor + pred.start as u64,
                        end: anchor + pred.end as u64,
                    });
                }
            }

            // The submission clock: the decision fires when the last
            // window frame has been captured.
            let now = anchor as f64 / stream_fps;
            let mut submit_frames = crate::metrics::union_frames(&preds);
            let mut carried: Vec<RelaySegment> = Vec::new();
            if let Some((frames, segs)) = deferred.take() {
                // Redeliver last horizon's deferred frames alongside this
                // submission (one extra chance).
                submit_frames += frames;
                carried = segs;
            }

            // Keep the simulated timeline moving even when the client has
            // no recorder of its own (the client sets the time again
            // before its span when it does).
            if let Some(t) = tel.as_deref() {
                t.set_time(now);
            }
            let outcome = client.submit(submit_frames, now);
            let tag = outcome.tag();
            horizon_tags.push((anchor, tag));
            if let Some(t) = tel.as_deref() {
                t.add_labeled("marshal.degradation", tag_label(tag), 1);
            }

            match outcome {
                SubmissionOutcome::Delivered { .. } => {
                    frames_relayed += submit_frames;
                    for seg in horizon_segments.iter().chain(carried.iter()) {
                        for inst in stream.all_intersecting(seg.event, seg.start, seg.end) {
                            detections.push(Detection {
                                event: seg.event,
                                start: inst.interval.start.max(seg.start),
                                end: inst.interval.end.min(seg.end),
                            });
                        }
                    }
                }
                SubmissionOutcome::Degraded { mode, reason, .. } => match mode {
                    DegradationMode::DropDeadLetter => {
                        lost_segments.extend(horizon_segments.iter().copied());
                        lost_segments.extend(carried.iter().copied());
                    }
                    DegradationMode::DeferNextHorizon => {
                        if carried.is_empty() {
                            let mut segs = horizon_segments.clone();
                            segs.shrink_to_fit();
                            deferred = Some((submit_frames, segs));
                        } else {
                            // Second failure: give up on both loads.
                            client.dead_letter(submit_frames, now, reason);
                            lost_segments.extend(horizon_segments.iter().copied());
                            lost_segments.extend(carried.iter().copied());
                        }
                    }
                    DegradationMode::LocalOnly => {
                        // Trust the C-REGRESS interval without the CI:
                        // coverage is claimed, not confirmed.
                        for seg in horizon_segments.iter().chain(carried.iter()) {
                            local_cover.push((seg.event, seg.start, seg.end));
                        }
                    }
                },
            }

            anchor += self.horizon as u64;
        }

        // Anything still deferred at the end of the walk is lost.
        if let Some((frames, segs)) = deferred.take() {
            client.dead_letter(frames, to as f64 / stream_fps, FailReason::RetriesExhausted);
            lost_segments.extend(segs);
        }

        // Attribute every ground-truth instance to exactly one bucket,
        // in confirmation-strength order: CI-confirmed, locally covered,
        // relayed-but-lost, never relayed.
        let mut attribution = MissAttribution::default();
        for &(k, s, e) in &ground_truth {
            let confirmed = detections
                .iter()
                .any(|d| d.event == k && d.start <= e && d.end >= s);
            if confirmed {
                attribution.detected += 1;
            } else if local_cover
                .iter()
                .any(|&(ev, ls, le)| ev == k && ls <= e && le >= s)
            {
                attribution.local_unconfirmed += 1;
            } else if lost_segments
                .iter()
                .any(|seg| seg.event == k && seg.start <= e && seg.end >= s)
            {
                attribution.dropped_by_faults += 1;
            } else {
                attribution.filtered_by_predictor += 1;
            }
        }

        if let Some(t) = tel.as_deref() {
            t.add("marshal.horizons", horizons as u64);
            t.add("marshal.frames_relayed", frames_relayed);
        }
        let cost = self.ci.account(
            horizons,
            self.window,
            self.horizon,
            frames_relayed,
            horizons as f64 * 1e-3,
        );

        Ok(ResilientMarshalResult {
            detections,
            ground_truth,
            horizon_tags,
            attribution,
            horizons,
            cost,
            stats: client.stats.clone(),
            fault_fingerprint: client.fault_trace().fingerprint(),
        })
    }
}

/// Outcome of a faulted (resilient) marshalling run.
#[derive(Debug, Clone)]
pub struct ResilientMarshalResult {
    /// CI-confirmed detections.
    pub detections: Vec<Detection>,
    /// True event instances in the walked region, `(event, start, end)`.
    pub ground_truth: Vec<(usize, u64, u64)>,
    /// Per-horizon degradation tag, `(anchor, tag)` in walk order.
    pub horizon_tags: Vec<(u64, DegradationTag)>,
    /// Every ground-truth instance attributed to one bucket.
    pub attribution: MissAttribution,
    /// Number of prediction episodes walked.
    pub horizons: usize,
    /// Cost accounting (only frames actually delivered are billed).
    pub cost: CostReport,
    /// Snapshot of the client's counters after the walk.
    pub stats: ResilienceStats,
    /// Fingerprint of the fault trace (bit-reproducible from the seed).
    pub fault_fingerprint: u64,
}

impl ResilientMarshalResult {
    /// Fraction of submissions delivered during the walk.
    pub fn availability(&self) -> f64 {
        self.stats.availability()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{ExperimentConfig, TaskRun};
    use crate::tasks::task;

    fn build_marshaller() -> (Marshaller, TaskRun) {
        let run = TaskRun::execute(&task("TA10").unwrap(), &ExperimentConfig::quick(5));
        let m = Marshaller::new(
            // Re-create a model? The run's model is moved out here.
            // We clone conformal state and reuse the trained model.
            EventHit::new(run.model.config().clone(), 99),
            run.state.clone(),
            Strategy::Ehcr {
                c: 0.95,
                alpha: 0.9,
            },
            run.window,
            run.horizon,
            CiConfig::default(),
        );
        (m, run)
    }

    #[test]
    fn walks_expected_number_of_horizons() {
        let (mut m, run) = build_marshaller();
        let from = run.window as u64;
        let to = from + (run.horizon as u64) * 5 + 10;
        let result = m.run(&run.stream, &run.features, from, to);
        assert_eq!(result.horizons, 5);
        assert!(result.cost.frames_covered == (run.horizon as u64) * 5);
    }

    #[test]
    fn trained_marshaller_detects_events() {
        let run = TaskRun::execute(&task("TA10").unwrap(), &ExperimentConfig::quick(6));
        let window = run.window;
        let horizon = run.horizon;
        let stream = run.stream.clone();
        let features = run.features.clone();
        let mut m = Marshaller::new(
            run.model,
            run.state,
            Strategy::Ehcr { c: 0.9, alpha: 0.5 },
            window,
            horizon,
            CiConfig::default(),
        );
        let from = (stream.len * 3) / 4; // marshal the test region
        let result = m.run(&stream, &features, from, stream.len);
        // The walked region should contain some events and the high-recall
        // strategy should find a decent share of them.
        if !result.ground_truth.is_empty() {
            assert!(
                result.instance_recall() > 0.3,
                "instance recall {}",
                result.instance_recall()
            );
        }
        // Relaying can never exceed brute force.
        assert!(result.cost.frames_relayed <= result.cost.frames_covered);
    }

    #[test]
    fn recall_helpers_handle_empty_truth() {
        let empty = MarshalResult {
            segments: vec![],
            detections: vec![],
            ground_truth: vec![],
            horizons: 0,
            cost: CiConfig::default().account(0, 10, 100, 0, 0.0),
        };
        assert_eq!(empty.frame_recall(), 1.0);
        assert_eq!(empty.instance_recall(), 1.0);
    }

    #[test]
    fn strategy_can_be_retuned() {
        let (mut m, _) = build_marshaller();
        m.set_strategy(Strategy::Eho { tau1: 0.5 });
    }

    #[test]
    fn bad_ranges_surface_as_typed_errors() {
        let (mut m, run) = build_marshaller();
        let err = m
            .try_run(&run.stream, &run.features, 0, run.stream.len)
            .unwrap_err();
        assert!(matches!(
            err,
            crate::error::CoreError::WindowUnderflow { .. }
        ));
        let err = m
            .try_run(
                &run.stream,
                &run.features,
                run.window as u64,
                run.stream.len + 1,
            )
            .unwrap_err();
        assert!(matches!(err, crate::error::CoreError::StreamBounds { .. }));
    }

    mod resilient {
        use super::*;
        use crate::faults::FaultConfig;
        use crate::resilient::{
            DegradationMode, DegradationTag, ResilienceConfig, ResilientCiClient, RetryPolicy,
        };
        use eventhit_video::detector::StageModel;

        struct Fixture {
            stream: eventhit_video::stream::VideoStream,
            features: eventhit_nn::matrix::Matrix,
            window: usize,
        }

        fn trained() -> (Marshaller, Fixture) {
            let run = TaskRun::execute(&task("TA10").unwrap(), &ExperimentConfig::quick(6));
            let fx = Fixture {
                stream: run.stream.clone(),
                features: run.features.clone(),
                window: run.window,
            };
            let m = Marshaller::new(
                run.model,
                run.state,
                Strategy::Ehcr { c: 0.9, alpha: 0.5 },
                run.window,
                run.horizon,
                CiConfig::default(),
            );
            (m, fx)
        }

        fn make_client(faults: FaultConfig, mode: DegradationMode, seed: u64) -> ResilientCiClient {
            ResilientCiClient::new(
                faults,
                ResilienceConfig {
                    degradation: mode,
                    retry: RetryPolicy {
                        max_attempts: 3,
                        ..RetryPolicy::default()
                    },
                    ..ResilienceConfig::default()
                },
                // Fast CI so deadlines don't dominate the test.
                StageModel::new("ci", 1000.0),
                seed,
            )
            .unwrap()
        }

        #[test]
        fn reliable_client_matches_plain_run() {
            let (mut m, fx) = trained();
            let from = (fx.stream.len * 3) / 4;
            let plain = m
                .try_run(&fx.stream, &fx.features, from, fx.stream.len)
                .unwrap();
            let mut client =
                make_client(FaultConfig::reliable(), DegradationMode::DropDeadLetter, 99);
            let res = m
                .run_resilient(
                    &fx.stream,
                    &fx.features,
                    from,
                    fx.stream.len,
                    30.0,
                    &mut client,
                )
                .unwrap();
            assert_eq!(res.availability(), 1.0);
            assert_eq!(res.attribution.dropped_by_faults, 0);
            assert_eq!(res.horizons, plain.horizons);
            assert_eq!(res.detections, plain.detections);
            assert_eq!(res.ground_truth, plain.ground_truth);
            assert_eq!(res.cost.frames_relayed, plain.cost.frames_relayed);
            assert!(res
                .horizon_tags
                .iter()
                .all(|&(_, t)| t == DegradationTag::None));
        }

        #[test]
        fn faulted_run_attributes_every_instance_and_replays() {
            let (mut m, fx) = trained();
            let from = fx.window as u64;
            let faults = FaultConfig {
                p_good_to_bad: 0.3,
                p_bad_to_good: 0.3,
                bad_loss: 1.0,
                transient_prob: 0.1,
                ..FaultConfig::reliable()
            };
            let go = |m: &mut Marshaller| {
                let mut client = make_client(faults.clone(), DegradationMode::DropDeadLetter, 123);
                m.run_resilient(
                    &fx.stream,
                    &fx.features,
                    from,
                    fx.stream.len,
                    30.0,
                    &mut client,
                )
                .unwrap()
            };
            let a = go(&mut m);
            assert_eq!(
                a.attribution.total(),
                a.ground_truth.len(),
                "every instance lands in exactly one bucket"
            );
            assert!(a.availability() < 1.0, "outages must show up");
            // Replay: bit-identical trace and attribution.
            let b = go(&mut m);
            assert_eq!(a.fault_fingerprint, b.fault_fingerprint);
            assert_eq!(a.attribution, b.attribution);
            assert_eq!(a.stats, b.stats);
            assert_eq!(a.horizon_tags, b.horizon_tags);
        }

        #[test]
        fn local_only_covers_without_confirmation() {
            let (mut m, fx) = trained();
            let from = fx.window as u64;
            // Total outage: nothing is ever delivered.
            let faults = FaultConfig {
                p_good_to_bad: 1.0,
                p_bad_to_good: 0.0,
                bad_loss: 1.0,
                ..FaultConfig::reliable()
            };
            let mut client = make_client(faults, DegradationMode::LocalOnly, 7);
            let res = m
                .run_resilient(
                    &fx.stream,
                    &fx.features,
                    from,
                    fx.stream.len,
                    30.0,
                    &mut client,
                )
                .unwrap();
            assert_eq!(res.attribution.detected, 0, "no CI confirmations");
            assert_eq!(
                res.attribution.dropped_by_faults, 0,
                "local mode never drops"
            );
            assert!(res.detections.is_empty());
            assert_eq!(
                res.attribution.local_unconfirmed + res.attribution.filtered_by_predictor,
                res.ground_truth.len()
            );
            assert!(res.attribution.effective_recall() >= res.attribution.confirmed_recall());
        }

        #[test]
        fn shared_recorder_sees_marshal_and_client_metrics() {
            use eventhit_telemetry::Telemetry;
            use std::sync::Arc;

            let (mut m, fx) = trained();
            let from = fx.window as u64;
            let faults = FaultConfig {
                p_good_to_bad: 0.3,
                p_bad_to_good: 0.3,
                bad_loss: 1.0,
                transient_prob: 0.1,
                ..FaultConfig::reliable()
            };
            let tel = Arc::new(Telemetry::with_manual_clock());
            m.set_telemetry(Arc::clone(&tel));
            let mut client = make_client(faults, DegradationMode::DropDeadLetter, 123);
            client.set_telemetry(Arc::clone(&tel));
            let res = m
                .run_resilient(
                    &fx.stream,
                    &fx.features,
                    from,
                    fx.stream.len,
                    30.0,
                    &mut client,
                )
                .unwrap();

            let snap = tel.snapshot();
            assert_eq!(snap.counter("marshal.horizons"), Some(res.horizons as u64));
            // One degradation tag per horizon, and the submission counter
            // matches the client's stats on the same recorder.
            assert_eq!(
                snap.counter_total("marshal.degradation"),
                res.horizons as u64
            );
            assert_eq!(snap.counter("ci.submissions"), Some(res.stats.submissions));
            // The ci.submit spans nest under the marshal.run_resilient span.
            let stats = snap.span_stats();
            let sub = stats
                .iter()
                .find(|s| s.path == "marshal.run_resilient/ci.submit")
                .expect("nested submit span");
            assert_eq!(sub.calls, res.stats.submissions);
        }

        #[test]
        fn deferred_mode_gives_one_second_chance() {
            let (mut m, fx) = trained();
            let from = fx.window as u64;
            // Deterministic alternating failure is hard to arrange; use a
            // bursty profile and just check conservation: every degraded
            // horizon is Deferred-tagged and dropped frames only come
            // from double failures or end-of-walk.
            let faults = FaultConfig {
                p_good_to_bad: 0.4,
                p_bad_to_good: 0.4,
                bad_loss: 1.0,
                ..FaultConfig::reliable()
            };
            let mut client = make_client(faults, DegradationMode::DeferNextHorizon, 15);
            let res = m
                .run_resilient(
                    &fx.stream,
                    &fx.features,
                    from,
                    fx.stream.len,
                    30.0,
                    &mut client,
                )
                .unwrap();
            for (_, tag) in &res.horizon_tags {
                assert!(
                    matches!(
                        tag,
                        DegradationTag::None
                            | DegradationTag::Retried { .. }
                            | DegradationTag::Deferred
                    ),
                    "unexpected tag {tag:?}"
                );
            }
            assert_eq!(res.attribution.total(), res.ground_truth.len());
        }
    }
}
