//! End-to-end training of EventHit with the paper's losses (§III).
//!
//! The total loss is `L_Total = L1 + L2`:
//!
//! * `L1` — per-event binary cross-entropy between the existence score
//!   `b_k` and the ground-truth indicator `1[E_k ∈ L_n]`, weighted by
//!   `β_k`.
//! * `L2` — per-frame cross-entropy between `θ_{k,v}` and the indicator
//!   that offset `v` falls inside the occurrence interval, computed only on
//!   records where the event occurs, weighted by `γ_k`, with the in-interval
//!   terms normalized by the interval length and the out-of-interval terms
//!   by the remaining horizon length (the paper's exact normalization).

use eventhit_rng::rngs::StdRng;
use eventhit_rng::seq::SliceRandom;
use eventhit_rng::SeedableRng;
use eventhit_telemetry::Telemetry;

use eventhit_nn::loss::{bce_scalar, bce_scalar_grad};
use eventhit_nn::matrix::Matrix;
use eventhit_nn::optimizer::{Adam, Optimizer};
use eventhit_nn::schedule::LrSchedule;
use eventhit_nn::weight_decay::WeightDecay;

use eventhit_video::records::Record;

use crate::model::EventHit;

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the (possibly rebalanced) training pool.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Per-event classification-loss weights `β_k` (empty = all 1).
    pub beta: Vec<f32>,
    /// Per-event occurrence-loss weights `γ_k` (empty = all 1).
    pub gamma: Vec<f32>,
    /// Global gradient-norm clip; steps whose gradient norm exceeds this
    /// are scaled down (implemented as learning-rate scaling).
    pub clip_norm: f32,
    /// RNG seed for shuffling and dropout.
    pub seed: u64,
    /// Oversample records whose horizon contains at least one event so
    /// minibatches are roughly class-balanced. The paper's real datasets
    /// have positive-anchor rates of a few percent; balancing is the
    /// standard remedy and does not change the conformal guarantees
    /// (C-CLASSIFY is rank-based).
    pub balance_positives: bool,
    /// Optional learning-rate schedule; overrides `lr` per step when set.
    pub schedule: Option<LrSchedule>,
    /// Decoupled weight decay (AdamW-style); 0 disables it. Biases are
    /// excluded.
    pub weight_decay: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 12,
            batch_size: 64,
            lr: 3e-3,
            beta: Vec::new(),
            gamma: Vec::new(),
            clip_norm: 5.0,
            seed: 7,
            balance_positives: true,
            schedule: None,
            weight_decay: 0.0,
        }
    }
}

/// Summary of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean total loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Loss of the final epoch.
    pub final_loss: f32,
}

/// Computes `L_Total` for a batch of head outputs and the gradient
/// `dL/d(output)` per head. `outputs[k]` has shape `batch x (1 + H)`.
pub fn event_losses(
    outputs: &[Matrix],
    records: &[&Record],
    beta: &[f32],
    gamma: &[f32],
    horizon: usize,
) -> (f32, Vec<Matrix>) {
    let batch = records.len();
    let k_events = outputs.len();
    assert!(batch > 0, "empty batch");
    let mut total = 0.0f32;
    let mut grads = Vec::with_capacity(k_events);
    let inv_batch = 1.0 / batch as f32;

    for (k, out) in outputs.iter().enumerate() {
        assert_eq!(
            out.shape(),
            (batch, 1 + horizon),
            "head output shape mismatch"
        );
        let beta_k = beta.get(k).copied().unwrap_or(1.0);
        let gamma_k = gamma.get(k).copied().unwrap_or(1.0);
        let mut grad = Matrix::zeros(batch, 1 + horizon);

        for (i, record) in records.iter().enumerate() {
            let label = &record.labels[k];
            let y_exist = if label.present { 1.0 } else { 0.0 };
            let b = out[(i, 0)];
            total += beta_k * bce_scalar(b, y_exist) * inv_batch;
            grad[(i, 0)] = beta_k * bce_scalar_grad(b, y_exist) * inv_batch;

            if !label.present {
                continue;
            }
            let dur = label.duration().max(1) as f32;
            let out_frames = (horizon as u32).saturating_sub(label.duration()).max(1) as f32;
            for v in 1..=horizon {
                let inside = (label.start..=label.end).contains(&(v as u32));
                let (y, w) = if inside {
                    (1.0, gamma_k / dur)
                } else {
                    (0.0, gamma_k / out_frames)
                };
                let p = out[(i, v)];
                total += w * bce_scalar(p, y) * inv_batch;
                grad[(i, v)] = w * bce_scalar_grad(p, y) * inv_batch;
            }
        }
        grads.push(grad);
    }
    (total, grads)
}

/// Builds the (optionally positive-balanced) index pool for one epoch.
fn index_pool(records: &[Record], balance: bool) -> Vec<usize> {
    let mut pool: Vec<usize> = (0..records.len()).collect();
    if !balance {
        return pool;
    }
    let positives: Vec<usize> = (0..records.len())
        .filter(|&i| records[i].labels.iter().any(|l| l.present))
        .collect();
    if positives.is_empty() {
        return pool;
    }
    let negatives = records.len() - positives.len();
    // Duplicate positives until they make up roughly half the pool.
    let dup = (negatives / positives.len()).saturating_sub(1).min(20);
    for _ in 0..dup {
        pool.extend_from_slice(&positives);
    }
    pool
}

/// Trains the model in place and returns per-epoch losses.
pub fn train(model: &mut EventHit, records: &[Record], cfg: &TrainConfig) -> TrainReport {
    train_instrumented(model, records, cfg, &Telemetry::disabled())
}

/// [`train`] with telemetry: a `train` span nesting one `train.epoch`
/// span per epoch, per-step timing in `train.step_seconds`, the example
/// throughput in `train.examples` / `train.examples_per_sec`, and the
/// running loss in the `train.epoch_loss` gauge.
pub fn train_instrumented(
    model: &mut EventHit,
    records: &[Record],
    cfg: &TrainConfig,
    tel: &Telemetry,
) -> TrainReport {
    assert!(!records.is_empty(), "no training records");
    assert!(cfg.epochs > 0 && cfg.batch_size > 0);
    let horizon = model.config().horizon;
    model.set_training(true);

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut opt = Adam::new(cfg.lr);
    let decay = WeightDecay::new(cfg.weight_decay);
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    let mut step = 0usize;

    let _run = tel.span("train");
    for _ in 0..cfg.epochs {
        let _epoch = tel.span("train.epoch");
        let epoch_start = tel.now();
        let mut pool = index_pool(records, cfg.balance_positives);
        pool.shuffle(&mut rng);
        let mut epoch_loss = 0.0f32;
        let mut batches = 0usize;
        let mut examples = 0u64;

        for chunk in pool.chunks(cfg.batch_size) {
            let step_start = tel.now();
            let batch: Vec<&Record> = chunk.iter().map(|&i| &records[i]).collect();
            model.zero_grad();
            let outputs = model.forward(&batch);
            let (loss, grads) = event_losses(&outputs, &batch, &cfg.beta, &cfg.gamma, horizon);
            model.backward(&grads);

            // Gradient clipping via learning-rate scaling: Adam's per-step
            // update is already magnitude-normalized, so scaling the step
            // for an over-norm gradient is equivalent in effect to clipping.
            let norm: f32 = model
                .params_mut()
                .iter()
                .map(|p| p.grad.as_slice().iter().map(|&g| g * g).sum::<f32>())
                .sum::<f32>()
                .sqrt();
            let scale = if norm > cfg.clip_norm {
                cfg.clip_norm / norm
            } else {
                1.0
            };
            let lr_base = cfg.schedule.as_ref().map_or(cfg.lr, |s| s.at(step));
            decay.apply(&mut model.params_mut(), lr_base, false);
            opt.set_learning_rate(lr_base * scale);
            opt.step(&mut model.params_mut());

            epoch_loss += loss;
            batches += 1;
            step += 1;
            examples += batch.len() as u64;
            tel.observe("train.step_seconds", tel.now() - step_start);
        }
        let mean_loss = epoch_loss / batches.max(1) as f32;
        tel.add("train.examples", examples);
        tel.gauge_set("train.epoch_loss", mean_loss as f64);
        let dt = tel.now() - epoch_start;
        if dt > 0.0 {
            tel.gauge_set("train.examples_per_sec", examples as f64 / dt);
        }
        epoch_losses.push(mean_loss);
    }

    model.set_training(false);
    let final_loss = *epoch_losses.last().expect("at least one epoch");
    TrainReport {
        epoch_losses,
        final_loss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::EventHitConfig;
    use eventhit_rng::Rng;
    use eventhit_video::records::EventLabel;

    fn labelled_record(m: usize, d: usize, fill: f32, label: EventLabel) -> Record {
        Record {
            anchor: 0,
            covariates: Matrix::filled(m, d, fill),
            labels: vec![label],
        }
    }

    #[test]
    fn loss_hand_computed_existence_only() {
        // One record, event absent: only the b term contributes.
        // out b = 0.5 -> loss = ln 2.
        let out = Matrix::from_vec(1, 3, vec![0.5, 0.9, 0.1]);
        let rec = labelled_record(1, 1, 0.0, EventLabel::absent());
        let (loss, grads) = event_losses(&[out], &[&rec], &[], &[], 2);
        assert!((loss - std::f32::consts::LN_2).abs() < 1e-5);
        // Theta gradients are zero for absent events.
        assert_eq!(grads[0][(0, 1)], 0.0);
        assert_eq!(grads[0][(0, 2)], 0.0);
        assert!(grads[0][(0, 0)] > 0.0); // pushes b down
    }

    #[test]
    fn loss_hand_computed_with_interval() {
        // H = 4, event present at [2, 3]; perfect predictions give ~0 loss.
        let out = Matrix::from_vec(1, 5, vec![1.0 - 1e-6, 1e-6, 1.0 - 1e-6, 1.0 - 1e-6, 1e-6]);
        let label = EventLabel {
            present: true,
            start: 2,
            end: 3,
            censored: false,
        };
        let rec = labelled_record(1, 1, 0.0, label);
        let (loss, _) = event_losses(&[out], &[&rec], &[], &[], 4);
        assert!(loss < 1e-4, "loss={loss}");
    }

    #[test]
    fn loss_normalizes_by_interval_length() {
        // Per the paper, each in-interval frame term carries weight 1/dur;
        // a uniform wrong prediction then contributes the same total
        // regardless of interval length.
        let h = 10;
        let mk = |start: u32, end: u32| {
            let mut v = vec![0.5f32; 1 + h];
            v[0] = 1.0 - 1e-6; // perfect existence
            let out = Matrix::from_vec(1, 1 + h, v);
            let rec = labelled_record(
                1,
                1,
                0.0,
                EventLabel {
                    present: true,
                    start,
                    end,
                    censored: false,
                },
            );
            let (loss, _) = event_losses(&[out], &[&rec], &[], &[], h);
            loss
        };
        let short = mk(3, 4); // dur 2
        let long = mk(2, 9); // dur 8
        assert!((short - long).abs() < 1e-4, "short={short} long={long}");
    }

    #[test]
    fn beta_gamma_scale_their_terms() {
        let out = Matrix::from_vec(1, 3, vec![0.5, 0.5, 0.5]);
        let label = EventLabel {
            present: true,
            start: 1,
            end: 1,
            censored: false,
        };
        let rec = labelled_record(1, 1, 0.0, label);
        let (base, _) = event_losses(std::slice::from_ref(&out), &[&rec], &[1.0], &[1.0], 2);
        let (scaled, _) = event_losses(&[out], &[&rec], &[2.0], &[3.0], 2);
        // base = ln2 (b) + ln2 (in, w=1) + ln2 (out, w=1) = 3 ln2.
        assert!((base - 3.0 * std::f32::consts::LN_2).abs() < 1e-5);
        // scaled = 2 ln2 + 3 ln2 + 3 ln2 = 8 ln2.
        assert!((scaled - 8.0 * std::f32::consts::LN_2).abs() < 1e-5);
    }

    #[test]
    fn gradient_matches_finite_difference_of_loss() {
        let h = 5;
        let label = EventLabel {
            present: true,
            start: 2,
            end: 3,
            censored: false,
        };
        let rec = labelled_record(1, 1, 0.0, label);
        let vals: Vec<f32> = (0..6).map(|i| 0.2 + 0.1 * i as f32).collect();
        let out = Matrix::from_vec(1, 6, vals.clone());
        let (_, grads) = event_losses(&[out], &[&rec], &[], &[], h);
        let eps = 1e-3f32;
        for e in 0..6 {
            let mut vp = vals.clone();
            vp[e] += eps;
            let (lp, _) = event_losses(&[Matrix::from_vec(1, 6, vp.clone())], &[&rec], &[], &[], h);
            vp[e] -= 2.0 * eps;
            let (lm, _) = event_losses(&[Matrix::from_vec(1, 6, vp)], &[&rec], &[], &[], h);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grads[0].as_slice()[e];
            assert!(
                (numeric - analytic).abs() < 2e-2,
                "e={e}: {numeric} vs {analytic}"
            );
        }
    }

    #[test]
    fn schedule_and_weight_decay_still_learn() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = 4;
        let d = 3;
        let h = 8;
        let records: Vec<Record> = (0..160)
            .map(|_| {
                let positive = rng.random::<f32>() < 0.5;
                let fill = if positive { 0.9 } else { 0.1 };
                let label = if positive {
                    EventLabel {
                        present: true,
                        start: 3,
                        end: 5,
                        censored: false,
                    }
                } else {
                    EventLabel::absent()
                };
                labelled_record(m, d, fill, label)
            })
            .collect();
        let cfg = EventHitConfig {
            input_dim: d,
            window: m,
            horizon: h,
            num_events: 1,
            hidden_dim: 8,
            shared_dim: 6,
            dropout: 0.0,
        };
        let mut model = EventHit::new(cfg, 13);
        let report = train(
            &mut model,
            &records,
            &TrainConfig {
                epochs: 25,
                batch_size: 32,
                lr: 0.02,
                schedule: Some(eventhit_nn::schedule::LrSchedule::WarmupCosine {
                    lr: 0.02,
                    warmup: 10,
                    total: 150,
                    floor: 0.1,
                }),
                weight_decay: 1e-3,
                ..Default::default()
            },
        );
        assert!(
            report.final_loss < report.epoch_losses[0] * 0.6,
            "losses: {:?}",
            report.epoch_losses
        );
    }

    #[test]
    fn instrumented_training_records_epochs_and_steps() {
        let records: Vec<Record> = (0..40)
            .map(|i| {
                labelled_record(
                    2,
                    2,
                    0.1 * (i % 10) as f32,
                    if i % 2 == 0 {
                        EventLabel {
                            present: true,
                            start: 1,
                            end: 2,
                            censored: false,
                        }
                    } else {
                        EventLabel::absent()
                    },
                )
            })
            .collect();
        let cfg = EventHitConfig {
            input_dim: 2,
            window: 2,
            horizon: 4,
            num_events: 1,
            hidden_dim: 4,
            shared_dim: 4,
            dropout: 0.0,
        };
        let mut model = EventHit::new(cfg, 3);
        let tcfg = TrainConfig {
            epochs: 3,
            batch_size: 16,
            ..Default::default()
        };
        let tel = Telemetry::new();
        let report = train_instrumented(&mut model, &records, &tcfg, &tel);
        assert_eq!(report.epoch_losses.len(), 3);

        let snap = tel.snapshot();
        let stats = snap.span_stats();
        let train_span = stats.iter().find(|s| s.path == "train").unwrap();
        let epoch_span = stats
            .iter()
            .find(|s| s.path == "train/train.epoch")
            .unwrap();
        assert_eq!(train_span.calls, 1);
        assert_eq!(epoch_span.calls, 3);
        let steps = snap.histogram("train.step_seconds").unwrap();
        assert!(steps.count() >= 3, "at least one step per epoch");
        assert!(snap.counter("train.examples").unwrap() >= 40 * 3);
        assert!(snap.gauge("train.epoch_loss").is_some());

        // The uninstrumented path trains identically (telemetry never
        // touches the RNG or the optimizer).
        let mut model2 = EventHit::new(
            EventHitConfig {
                input_dim: 2,
                window: 2,
                horizon: 4,
                num_events: 1,
                hidden_dim: 4,
                shared_dim: 4,
                dropout: 0.0,
            },
            3,
        );
        let report2 = train(&mut model2, &records, &tcfg);
        assert_eq!(report.epoch_losses, report2.epoch_losses);
    }

    #[test]
    fn index_pool_balances_positives() {
        let pos = labelled_record(
            1,
            1,
            0.0,
            EventLabel {
                present: true,
                start: 1,
                end: 1,
                censored: false,
            },
        );
        let neg = labelled_record(1, 1, 0.0, EventLabel::absent());
        let mut records = vec![pos];
        for _ in 0..9 {
            records.push(neg.clone());
        }
        let pool = index_pool(&records, true);
        let pos_count = pool.iter().filter(|&&i| i == 0).count();
        // 1 positive duplicated ~9x against 9 negatives.
        assert!(pos_count >= 5, "positives={pos_count} pool={}", pool.len());
        let plain = index_pool(&records, false);
        assert_eq!(plain.len(), 10);
    }

    #[test]
    fn training_reduces_loss_on_learnable_task() {
        // Synthetic: feature value directly encodes whether/when the event
        // happens. Records with fill > 0 have the event at a fixed interval.
        let mut rng = StdRng::seed_from_u64(3);
        let m = 4;
        let d = 3;
        let h = 8;
        let records: Vec<Record> = (0..240)
            .map(|_| {
                let positive = rng.random::<f32>() < 0.5;
                let fill = if positive { 0.9 } else { 0.1 };
                let noise: f32 = rng.random_range(-0.05..0.05);
                let label = if positive {
                    EventLabel {
                        present: true,
                        start: 3,
                        end: 5,
                        censored: false,
                    }
                } else {
                    EventLabel::absent()
                };
                labelled_record(m, d, fill + noise, label)
            })
            .collect();

        let cfg = EventHitConfig {
            input_dim: d,
            window: m,
            horizon: h,
            num_events: 1,
            hidden_dim: 8,
            shared_dim: 6,
            dropout: 0.0,
        };
        let mut model = EventHit::new(cfg, 11);
        let report = train(
            &mut model,
            &records,
            &TrainConfig {
                epochs: 30,
                batch_size: 32,
                lr: 0.01,
                ..Default::default()
            },
        );
        assert!(
            report.final_loss < report.epoch_losses[0] * 0.5,
            "loss did not halve: {:?}",
            report.epoch_losses
        );

        // The trained model separates positives from negatives on b and
        // puts high theta inside the interval.
        let pos = labelled_record(
            m,
            d,
            0.9,
            EventLabel {
                present: true,
                start: 3,
                end: 5,
                censored: false,
            },
        );
        let neg = labelled_record(m, d, 0.1, EventLabel::absent());
        let outs = model.forward_inference(&[&pos, &neg]);
        let b_pos = outs[0][(0, 0)];
        let b_neg = outs[0][(1, 0)];
        assert!(b_pos > 0.7 && b_neg < 0.3, "b_pos={b_pos} b_neg={b_neg}");
        assert!(
            outs[0][(0, 4)] > outs[0][(0, 8)],
            "theta should peak inside interval"
        );
    }
}
