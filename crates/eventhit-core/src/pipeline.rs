//! Prediction strategies: EHO, EHC, EHR, EHCR (§VI.B items 1–4).
//!
//! [`ConformalState`] is fitted once per task from the calibration split's
//! scored records (Algorithm 1 lines 4–6 and Algorithm 2 lines 5–16); a
//! [`Strategy`] then turns any scored record into per-event
//! [`IntervalPrediction`]s. Because the state holds the full calibration
//! score sets, sweeping `c` and `α` costs nothing beyond the per-record
//! decision.

use eventhit_conformal::classify::ConformalClassifier;
use eventhit_conformal::nonconformity::Nonconformity;
use eventhit_conformal::regress::IntervalCalibration;

use crate::error::{CoreError, CoreResult};
use crate::infer::{eho_predict, raw_interval, IntervalPrediction, ScoredRecord};

/// Which algorithm variant decides existence and interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// Thresholds only (Eq. 4–6): `b >= tau1`, raw interval.
    Eho {
        /// Existence threshold `τ_1`.
        tau1: f64,
    },
    /// C-CLASSIFY existence (Eq. 9), raw interval.
    Ehc {
        /// Confidence level `c`.
        c: f64,
    },
    /// Threshold existence, C-REGRESS interval (Eq. 11).
    Ehr {
        /// Existence threshold `τ_1`.
        tau1: f64,
        /// Coverage level `α`.
        alpha: f64,
    },
    /// C-CLASSIFY existence and C-REGRESS interval.
    Ehcr {
        /// Confidence level `c`.
        c: f64,
        /// Coverage level `α`.
        alpha: f64,
    },
}

impl Strategy {
    /// Short display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Eho { .. } => "EHO",
            Strategy::Ehc { .. } => "EHC",
            Strategy::Ehr { .. } => "EHR",
            Strategy::Ehcr { .. } => "EHCR",
        }
    }
}

/// Fitted calibration state for one task: per-event conformal classifier
/// and interval calibration.
#[derive(Debug, Clone)]
pub struct ConformalState {
    classifiers: Vec<ConformalClassifier>,
    intervals: Vec<IntervalCalibration>,
    tau2: f32,
    horizon: u32,
}

impl ConformalState {
    /// Fits from the calibration split's scored records.
    ///
    /// For each event `k`:
    /// * the conformal classifier is fitted on the `b_k` scores of records
    ///   where `E_k` truly occurs (Algorithm 1);
    /// * interval residuals `|ŝ - s|`, `|ê - e|` are computed from the raw
    ///   (EHO, `τ_2`) interval estimate on the same records (Algorithm 2).
    pub fn fit(calib: &[ScoredRecord], num_events: usize, tau2: f32, horizon: usize) -> Self {
        Self::try_fit(calib, num_events, tau2, horizon)
            .unwrap_or_else(|e| panic!("conformal fit failed: {e}"))
    }

    /// Fallible [`ConformalState::fit`]: rejects calibration records whose
    /// score or label vectors are shorter than `num_events` instead of
    /// panicking on an out-of-bounds index deep inside the loop.
    pub fn try_fit(
        calib: &[ScoredRecord],
        num_events: usize,
        tau2: f32,
        horizon: usize,
    ) -> CoreResult<Self> {
        for rec in calib {
            if rec.scores.len() < num_events {
                return Err(CoreError::ShapeMismatch {
                    what: "calibration record scores",
                    expected: num_events,
                    got: rec.scores.len(),
                });
            }
            if rec.labels.len() < num_events {
                return Err(CoreError::ShapeMismatch {
                    what: "calibration record labels",
                    expected: num_events,
                    got: rec.labels.len(),
                });
            }
        }
        let mut classifiers = Vec::with_capacity(num_events);
        let mut intervals = Vec::with_capacity(num_events);
        for k in 0..num_events {
            let mut b_scores = Vec::new();
            let mut start_residuals = Vec::new();
            let mut end_residuals = Vec::new();
            for rec in calib {
                let label = &rec.labels[k];
                if !label.present {
                    continue;
                }
                b_scores.push(rec.scores[k].b);
                let (s_hat, e_hat) = raw_interval(&rec.scores[k], tau2);
                start_residuals.push((s_hat as f64 - label.start as f64).abs());
                end_residuals.push((e_hat as f64 - label.end as f64).abs());
            }
            classifiers.push(ConformalClassifier::fit(
                &b_scores,
                Nonconformity::OneMinusScore,
            ));
            intervals.push(IntervalCalibration::fit(start_residuals, end_residuals));
        }
        Ok(ConformalState {
            classifiers,
            intervals,
            tau2,
            horizon: horizon as u32,
        })
    }

    /// Number of event types.
    pub fn num_events(&self) -> usize {
        self.classifiers.len()
    }

    /// The θ threshold `τ_2` this state was fitted with — needed to refit
    /// an equivalent state from rescored calibration records (e.g. on the
    /// quantized inference lane).
    pub fn tau2(&self) -> f32 {
        self.tau2
    }

    /// The prediction horizon `H` this state was fitted for.
    pub fn horizon(&self) -> u32 {
        self.horizon
    }

    /// Reassembles a state from its fitted parts — the inverse of reading
    /// them back through [`ConformalState::classifier`] /
    /// [`ConformalState::interval_calibration`] / [`ConformalState::tau2`]
    /// / [`ConformalState::horizon`]. The durable serving layer uses this
    /// to restore a persisted state bit-identically without re-scoring
    /// the calibration split.
    pub fn from_parts(
        classifiers: Vec<ConformalClassifier>,
        intervals: Vec<IntervalCalibration>,
        tau2: f32,
        horizon: u32,
    ) -> CoreResult<Self> {
        if classifiers.len() != intervals.len() {
            return Err(CoreError::ShapeMismatch {
                what: "conformal state parts",
                expected: classifiers.len(),
                got: intervals.len(),
            });
        }
        Ok(ConformalState {
            classifiers,
            intervals,
            tau2,
            horizon,
        })
    }

    /// Per-event positive calibration-set sizes.
    pub fn calibration_sizes(&self) -> Vec<usize> {
        self.classifiers
            .iter()
            .map(ConformalClassifier::calibration_size)
            .collect()
    }

    /// The fitted conformal classifier of event `k`.
    pub fn classifier(&self, k: usize) -> &ConformalClassifier {
        &self.classifiers[k]
    }

    /// The fitted interval calibration of event `k`.
    pub fn interval_calibration(&self, k: usize) -> &IntervalCalibration {
        &self.intervals[k]
    }

    /// Predicts all events of one record under `strategy`.
    pub fn predict(&self, rec: &ScoredRecord, strategy: &Strategy) -> Vec<IntervalPrediction> {
        (0..self.num_events())
            .map(|k| self.predict_event(rec, k, strategy))
            .collect()
    }

    /// Fallible [`ConformalState::predict`]: rejects records scored for
    /// fewer events than this state was fitted on.
    pub fn try_predict(
        &self,
        rec: &ScoredRecord,
        strategy: &Strategy,
    ) -> CoreResult<Vec<IntervalPrediction>> {
        if rec.scores.len() < self.num_events() {
            return Err(CoreError::ShapeMismatch {
                what: "scored record events",
                expected: self.num_events(),
                got: rec.scores.len(),
            });
        }
        Ok(self.predict(rec, strategy))
    }

    /// Predicts one event of one record under `strategy`.
    pub fn predict_event(
        &self,
        rec: &ScoredRecord,
        k: usize,
        strategy: &Strategy,
    ) -> IntervalPrediction {
        let scores = &rec.scores[k];
        match *strategy {
            Strategy::Eho { tau1 } => eho_predict(scores, tau1, self.tau2),
            Strategy::Ehc { c } => {
                if !self.classifiers[k].predict(scores.b, c) {
                    return IntervalPrediction::absent();
                }
                let (start, end) = raw_interval(scores, self.tau2);
                IntervalPrediction {
                    present: true,
                    start,
                    end,
                }
            }
            Strategy::Ehr { tau1, alpha } => {
                if scores.b < tau1 {
                    return IntervalPrediction::absent();
                }
                let (s, e) = raw_interval(scores, self.tau2);
                let (start, end) = self.intervals[k].adjust(s, e, self.horizon, alpha);
                IntervalPrediction {
                    present: true,
                    start,
                    end,
                }
            }
            Strategy::Ehcr { c, alpha } => {
                if !self.classifiers[k].predict(scores.b, c) {
                    return IntervalPrediction::absent();
                }
                let (s, e) = raw_interval(scores, self.tau2);
                let (start, end) = self.intervals[k].adjust(s, e, self.horizon, alpha);
                IntervalPrediction {
                    present: true,
                    start,
                    end,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::EventScores;
    use eventhit_video::records::EventLabel;

    /// A calibration set whose positives have b scores 0.9, 0.7, 0.5, 0.3
    /// and true interval [4, 6] with raw estimates [3, 7].
    fn calib_set() -> Vec<ScoredRecord> {
        [0.9, 0.7, 0.5, 0.3]
            .iter()
            .map(|&b| {
                let mut theta = vec![0.0f32; 10];
                for t in theta.iter_mut().take(7).skip(2) {
                    *t = 0.9; // offsets 3..=7
                }
                ScoredRecord {
                    anchor: 0,
                    scores: vec![EventScores { b, theta }],
                    labels: vec![EventLabel {
                        present: true,
                        start: 4,
                        end: 6,
                        censored: false,
                    }],
                }
            })
            .collect()
    }

    fn test_record(b: f64) -> ScoredRecord {
        let mut theta = vec![0.0f32; 10];
        theta[4] = 0.9; // offset 5 only
        ScoredRecord {
            anchor: 1,
            scores: vec![EventScores { b, theta }],
            labels: vec![EventLabel::absent()],
        }
    }

    #[test]
    fn fit_collects_positive_scores_and_residuals() {
        let state = ConformalState::fit(&calib_set(), 1, 0.5, 10);
        assert_eq!(state.calibration_sizes(), vec![4]);
        // Residuals: |3-4| = 1 (start), |7-6| = 1 (end) for all records.
        let (qs, qe) = state.interval_calibration(0).quantiles(0.9);
        assert_eq!((qs, qe), (1.0, 1.0));
    }

    #[test]
    fn eho_strategy_uses_threshold() {
        let state = ConformalState::fit(&calib_set(), 1, 0.5, 10);
        let rec = test_record(0.6);
        let p = state.predict(&rec, &Strategy::Eho { tau1: 0.5 })[0];
        assert!(p.present);
        assert_eq!((p.start, p.end), (5, 5));
        let p = state.predict(&rec, &Strategy::Eho { tau1: 0.7 })[0];
        assert!(!p.present);
    }

    #[test]
    fn ehc_strategy_uses_p_values() {
        let state = ConformalState::fit(&calib_set(), 1, 0.5, 10);
        // b = 0.2 => a = 0.8, all 4 calib non-conformities (0.1..0.7) below
        // => p = 1/5 = 0.2. Predicted positive iff 0.2 >= 1 - c.
        let rec = test_record(0.2);
        assert!(!state.predict(&rec, &Strategy::Ehc { c: 0.7 })[0].present);
        assert!(state.predict(&rec, &Strategy::Ehc { c: 0.8 })[0].present);
        assert!(state.predict(&rec, &Strategy::Ehc { c: 0.95 })[0].present);
    }

    #[test]
    fn ehr_widens_interval() {
        let state = ConformalState::fit(&calib_set(), 1, 0.5, 10);
        let rec = test_record(0.9);
        let eho = state.predict(&rec, &Strategy::Eho { tau1: 0.5 })[0];
        let ehr = state.predict(
            &rec,
            &Strategy::Ehr {
                tau1: 0.5,
                alpha: 0.9,
            },
        )[0];
        assert!(ehr.start <= eho.start && ehr.end >= eho.end);
        assert_eq!((ehr.start, ehr.end), (4, 6)); // widened by q = 1 each side
    }

    #[test]
    fn ehcr_combines_both() {
        let state = ConformalState::fit(&calib_set(), 1, 0.5, 10);
        let rec = test_record(0.2);
        // Existence via conformal (c = 0.9 admits), interval widened.
        let p = state.predict(&rec, &Strategy::Ehcr { c: 0.9, alpha: 0.9 })[0];
        assert!(p.present);
        assert_eq!((p.start, p.end), (4, 6));
        // Low c rejects.
        let p = state.predict(&rec, &Strategy::Ehcr { c: 0.5, alpha: 0.9 })[0];
        assert!(!p.present);
    }

    #[test]
    fn higher_c_never_shrinks_prediction_set() {
        let state = ConformalState::fit(&calib_set(), 1, 0.5, 10);
        for b in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let rec = test_record(b);
            for (c_lo, c_hi) in [(0.5, 0.7), (0.7, 0.9), (0.9, 0.99)] {
                let lo = state.predict(&rec, &Strategy::Ehc { c: c_lo })[0];
                let hi = state.predict(&rec, &Strategy::Ehc { c: c_hi })[0];
                if lo.present {
                    assert!(hi.present, "b={b} c={c_lo}->{c_hi}");
                }
            }
        }
    }

    #[test]
    fn try_fit_rejects_short_records() {
        let mut calib = calib_set();
        calib[1].scores.clear();
        let err = ConformalState::try_fit(&calib, 1, 0.5, 10).unwrap_err();
        assert!(matches!(
            err,
            CoreError::ShapeMismatch {
                what: "calibration record scores",
                expected: 1,
                got: 0,
            }
        ));
    }

    #[test]
    fn try_predict_rejects_short_records() {
        let state = ConformalState::fit(&calib_set(), 1, 0.5, 10);
        let mut rec = test_record(0.5);
        assert!(state
            .try_predict(&rec, &Strategy::Eho { tau1: 0.5 })
            .is_ok());
        rec.scores.clear();
        let err = state
            .try_predict(&rec, &Strategy::Eho { tau1: 0.5 })
            .unwrap_err();
        assert!(matches!(err, CoreError::ShapeMismatch { .. }));
    }

    #[test]
    fn strategy_names() {
        assert_eq!(Strategy::Eho { tau1: 0.5 }.name(), "EHO");
        assert_eq!(Strategy::Ehcr { c: 0.9, alpha: 0.5 }.name(), "EHCR");
    }
}
