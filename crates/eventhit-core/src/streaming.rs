//! Frame-by-frame online prediction.
//!
//! [`OnlinePredictor`] consumes frames one at a time (from any
//! [`FrameSource`](eventhit_video::online::FrameSource)-shaped pipeline),
//! maintains the collection-window ring buffer, and emits a relay decision
//! once per horizon — the push-based complement to the batch
//! [`Marshaller`](crate::marshal::Marshaller), for deployments where frames
//! arrive from a live camera rather than a stored stream.
//!
//! Under the default [`SamplingPolicy::Fixed`] every pushed frame is
//! encoded into the window. A [`SamplingPolicy::DeltaGate`] or
//! [`SamplingPolicy::Adaptive`] policy (see [`crate::sampling`]) gates
//! low-motion frames in front of the encoder — they are acknowledged
//! (the anchor cadence still advances) but not encoded, and anchors
//! whose window content did not change reuse the previous anchor's
//! predictions (duplicate-carry), skipping the model forward entirely.

use std::sync::Arc;

use eventhit_nn::matrix::Matrix;
use eventhit_nn::quant::InferenceLane;
use eventhit_telemetry::{fnv1a, Telemetry};
use eventhit_video::online::WindowBuffer;
use eventhit_video::records::{EventLabel, Record};

use crate::error::{CoreError, CoreResult};
use crate::infer::{score_records, scored_from_outputs, IntervalPrediction, ScoredRecord};
use crate::model::{EventHit, QuantizedEventHit};
use crate::pipeline::{ConformalState, Strategy};
use crate::resilient::{BreakerState, DegradationTag, ResilientCiClient};
use crate::sampling::{Sampler, SamplingPolicy, HIT_TAU1};

/// A relay decision emitted at a prediction anchor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HorizonDecision {
    /// The anchor frame (0-based index of the last window frame).
    pub anchor: u64,
    /// Per-event predicted intervals (offsets relative to the anchor,
    /// 1-based, as everywhere else).
    pub predictions: Vec<IntervalPrediction>,
    /// How (if at all) this decision was degraded by the cloud path.
    /// [`DegradationTag::None`] on the fault-free path.
    pub degradation: DegradationTag,
}

impl HorizonDecision {
    /// Absolute frame segments to relay, `(event, start, end)`.
    pub fn segments(&self) -> Vec<(usize, u64, u64)> {
        self.predictions
            .iter()
            .enumerate()
            .filter(|(_, p)| p.present)
            .map(|(k, p)| (k, self.anchor + p.start as u64, self.anchor + p.end as u64))
            .collect()
    }
}

/// The complete *dynamic* state of an [`OnlinePredictor`] — everything
/// that changes as frames are pushed. A predictor rescores its window
/// at every content-changing anchor (no recurrent state is carried
/// between anchors), so the buffered rows, the frames-seen counter, and
/// the anchor countdown are sufficient: restoring them into a predictor
/// built from the same (model, conformal state, strategy, lane)
/// reproduces the original's future decisions bit-for-bit under the
/// default `Fixed` sampling policy. This is what durable serving
/// snapshots persist and what crash recovery replays into (durable
/// serving rejects non-`Fixed` policies at bind time precisely because
/// the gate/window state below is not captured here).
#[derive(Debug, Clone, PartialEq)]
pub struct PredictorState {
    /// Buffered window rows, oldest first (at most `window` rows).
    pub rows: Vec<Vec<f32>>,
    /// Total frames ever *pushed* through the predictor (including any
    /// gated frames, which advance the cadence without being encoded;
    /// under the default `Fixed` sampling policy every pushed frame is
    /// also buffered, so this equals the buffer's push count).
    pub frames_seen: u64,
    /// Frames remaining until the next prediction anchor.
    pub countdown: u64,
}

impl PredictorState {
    /// FNV-1a fingerprint over the state's canonical byte image
    /// (`frames_seen`, `countdown`, then each row's length and f32 bit
    /// patterns, all little-endian). Two states fingerprint equal iff
    /// they are bit-identical — the equality recovery asserts after a
    /// snapshot restore.
    pub fn fingerprint(&self) -> u64 {
        let mut bytes =
            Vec::with_capacity(16 + self.rows.iter().map(|r| 4 + r.len() * 4).sum::<usize>());
        bytes.extend_from_slice(&self.frames_seen.to_le_bytes());
        bytes.extend_from_slice(&self.countdown.to_le_bytes());
        for row in &self.rows {
            bytes.extend_from_slice(&(row.len() as u32).to_le_bytes());
            for v in row {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
        }
        fnv1a(&bytes)
    }
}

/// Push-based online predictor: feed frames, get one decision per horizon.
pub struct OnlinePredictor {
    model: EventHit,
    /// Int8 snapshot of `model`, built once at construction when the lane
    /// is [`InferenceLane::Quantized`] so per-frame scoring never pays the
    /// quantization cost.
    quantized: Option<QuantizedEventHit>,
    lane: InferenceLane,
    state: ConformalState,
    strategy: Strategy,
    buffer: WindowBuffer,
    horizon: u64,
    /// Frames remaining until the next prediction anchor.
    countdown: u64,
    /// Content-adaptive sampling state (gate, skip runs, adaptive `m`).
    /// [`SamplingPolicy::Fixed`] admits everything and is bit-identical
    /// to the pre-sampling predictor.
    sampler: Sampler,
    /// Stream position: total frames pushed, *including* gated frames.
    /// Decouples the anchor cadence from the buffer's push count so
    /// gated lanes anchor at exactly the frames a `Fixed` lane would.
    stream_pos: u64,
    /// The last scored anchor's predictions, raw hit bit, and covariate
    /// window — the duplicate-carry memo. An anchor whose candidate
    /// window drifted less than the gate threshold from the memo's
    /// window (per-dimension window means, same `m`) reuses the
    /// memoized predictions without a forward, up to `max_carry`
    /// consecutive anchors.
    carry: Option<CarriedAnchor>,
    /// `stream.frames_skipped` already flushed to telemetry. Skips are
    /// counted in the sampler and flushed in batches at decision time so
    /// gated streams pay no per-frame telemetry the `Fixed` policy
    /// doesn't.
    skipped_flushed: u64,
    /// Optional recorder; `None` keeps the hot path free of telemetry
    /// branches beyond one pointer check.
    telemetry: Option<Arc<Telemetry>>,
    /// Ambient trace id attached to stage observations while set (the
    /// serving layer sets it per traced batch). Not part of the exported
    /// predictor state: tracing never influences decisions or replay.
    trace: Option<u64>,
}

/// The duplicate-carry memo of the last scored anchor.
struct CarriedAnchor {
    predictions: Vec<IntervalPrediction>,
    /// `max_k b_k >= HIT_TAU1` of the scored window (feeds the adaptive
    /// window EMA at carried anchors without rescoring).
    hit: bool,
    /// Window length the memo was scored at.
    m: usize,
    /// The covariate window the memo was scored on — the reference
    /// candidate windows are drift-tested against.
    covariates: Matrix,
    /// Consecutive anchors carried off this memo so far.
    run: u32,
}

impl OnlinePredictor {
    /// Creates a predictor that fires its first decision as soon as the
    /// collection window fills, then once every `horizon` frames. Scores
    /// on the exact f32 lane; see [`OnlinePredictor::with_lane`] for the
    /// int8 fast lane.
    pub fn new(model: EventHit, state: ConformalState, strategy: Strategy) -> Self {
        Self::with_lane(model, state, strategy, InferenceLane::Exact)
    }

    /// Like [`OnlinePredictor::new`], but scoring on an explicit
    /// [`InferenceLane`]. `Quantized` snapshots the model onto int8
    /// weights once, here, and every subsequent frame scores on that
    /// snapshot — pair it with a [`ConformalState`] refitted from
    /// quantized calibration scores (see
    /// [`TaskRun::state_for_lane`](crate::experiment::TaskRun::state_for_lane))
    /// so the conformal guarantee covers the quantization error.
    pub fn with_lane(
        model: EventHit,
        state: ConformalState,
        strategy: Strategy,
        lane: InferenceLane,
    ) -> Self {
        Self::with_policy(model, state, strategy, lane, SamplingPolicy::Fixed)
    }

    /// Like [`OnlinePredictor::with_lane`], plus an explicit
    /// [`SamplingPolicy`]. Non-`Fixed` policies gate low-motion frames
    /// and (for `Adaptive`) shrink the scored window — pair them with a
    /// [`ConformalState`] refitted on gated trajectories (see
    /// [`TaskRun::state_for_sampling`](crate::experiment::TaskRun::state_for_sampling))
    /// so the coverage guarantee covers the sampling distortion.
    pub fn with_policy(
        model: EventHit,
        state: ConformalState,
        strategy: Strategy,
        lane: InferenceLane,
        policy: SamplingPolicy,
    ) -> Self {
        let cfg = model.config().clone();
        let quantized = match lane {
            InferenceLane::Exact => None,
            InferenceLane::Quantized => Some(model.quantized()),
        };
        OnlinePredictor {
            buffer: WindowBuffer::new(cfg.window, cfg.input_dim),
            horizon: cfg.horizon as u64,
            countdown: 0,
            sampler: Sampler::new(policy, cfg.window),
            stream_pos: 0,
            carry: None,
            skipped_flushed: 0,
            model,
            quantized,
            lane,
            state,
            strategy,
            telemetry: None,
            trace: None,
        }
    }

    /// The inference lane this predictor scores on.
    pub fn lane(&self) -> InferenceLane {
        self.lane
    }

    /// The sampling policy this predictor runs.
    pub fn policy(&self) -> &SamplingPolicy {
        self.sampler.policy()
    }

    /// Replaces the sampling policy, resetting the gate state, the
    /// duplicate-carry memo, and the adaptive window. Intended at
    /// stream-open time (the serving layer applies its per-stream
    /// [`ServeConfig`](../../eventhit_serve/server/struct.ServeConfig.html)
    /// policy to factory-built predictors here); switching mid-stream is
    /// deterministic but re-warms the gate from the next frame.
    pub fn set_policy(&mut self, policy: SamplingPolicy) {
        self.sampler = Sampler::new(policy, self.model.config().window);
        self.carry = None;
        self.skipped_flushed = 0;
    }

    /// Frames gated (acknowledged but not encoded) so far.
    pub fn frames_skipped(&self) -> u64 {
        self.sampler.frames_skipped()
    }

    /// The window length `m` the encoder consumes at the next anchor
    /// (the configured `M` under non-adaptive policies).
    pub fn window_len(&self) -> usize {
        self.sampler.window_len()
    }

    /// Changes the operating strategy on the fly.
    pub fn set_strategy(&mut self, strategy: Strategy) {
        self.strategy = strategy;
    }

    /// Feature dimensionality each pushed frame must have — used by
    /// serving frontends to validate submissions before feeding the
    /// window buffer.
    pub fn input_dim(&self) -> usize {
        self.model.config().input_dim
    }

    /// Exports the predictor's dynamic state (see [`PredictorState`]).
    ///
    /// Complete under the default `Fixed` sampling policy (the durable
    /// serving path, which rejects non-`Fixed` policies at bind time).
    /// Under a gating policy the snapshot captures the window, cadence,
    /// and stream position but not the gate's reference frame or the
    /// adaptive window EMA — a restore re-warms those.
    pub fn export_state(&self) -> PredictorState {
        PredictorState {
            rows: self.buffer.snapshot_rows(),
            frames_seen: self.stream_pos,
            countdown: self.countdown,
        }
    }

    /// Restores dynamic state exported by [`OnlinePredictor::export_state`]
    /// (possibly from another process: the durable recovery path). The
    /// predictor must have been built from the same model configuration;
    /// mismatched row counts or dimensionalities are rejected with a typed
    /// error before anything is mutated.
    pub fn restore_state(&mut self, st: &PredictorState) -> CoreResult<()> {
        let cfg = self.model.config();
        if st.rows.len() > cfg.window {
            return Err(CoreError::ShapeMismatch {
                what: "restored window rows",
                expected: cfg.window,
                got: st.rows.len(),
            });
        }
        if let Some(row) = st.rows.iter().find(|r| r.len() != cfg.input_dim) {
            return Err(CoreError::ShapeMismatch {
                what: "restored window row dim",
                expected: cfg.input_dim,
                got: row.len(),
            });
        }
        if st.frames_seen < st.rows.len() as u64 {
            return Err(CoreError::InvalidConfig(format!(
                "restored state claims {} frames seen but buffers {} rows",
                st.frames_seen,
                st.rows.len()
            )));
        }
        if st.countdown >= self.horizon {
            return Err(CoreError::InvalidConfig(format!(
                "restored countdown {} is not below the horizon {}",
                st.countdown, self.horizon
            )));
        }
        self.buffer =
            WindowBuffer::restore(cfg.window, cfg.input_dim, st.rows.clone(), st.frames_seen);
        self.countdown = st.countdown;
        self.stream_pos = st.frames_seen;
        // Sampling state is not part of the snapshot (see
        // `export_state`): reset the gate and carry. A no-op under the
        // `Fixed` policy durable serving requires.
        let policy = self.sampler.policy().clone();
        self.sampler = Sampler::new(policy, cfg.window);
        self.carry = None;
        self.skipped_flushed = 0;
        Ok(())
    }

    /// Hot-swaps the predictor's model and conformal state in place,
    /// keeping the window buffer and anchor cadence — the serving-layer
    /// model reload. Subsequent decisions score the *existing* window on
    /// the new weights, so the decision sequence around the swap is a
    /// pure function of (frames, old model, swap point, new model) and
    /// replays exactly. The new model must share the shape-relevant
    /// config (input dim, window, horizon, events); pair it with a state
    /// refitted for it (see `TaskRun::state_for_model`) or the coverage
    /// guarantees are void. On the quantized lane the int8 snapshot is
    /// rebuilt from the new weights.
    pub fn reload_model(&mut self, model: EventHit, state: ConformalState) -> CoreResult<()> {
        let old = self.model.config();
        let new = model.config();
        if (new.input_dim, new.window, new.horizon, new.num_events)
            != (old.input_dim, old.window, old.horizon, old.num_events)
        {
            return Err(CoreError::InvalidConfig(format!(
                "reloaded model shape (dim {}, window {}, horizon {}, events {}) \
                 does not match the serving shape (dim {}, window {}, horizon {}, events {})",
                new.input_dim,
                new.window,
                new.horizon,
                new.num_events,
                old.input_dim,
                old.window,
                old.horizon,
                old.num_events
            )));
        }
        if state.num_events() != new.num_events {
            return Err(CoreError::ShapeMismatch {
                what: "reloaded conformal state events",
                expected: new.num_events,
                got: state.num_events(),
            });
        }
        self.quantized = match self.lane {
            InferenceLane::Exact => None,
            InferenceLane::Quantized => Some(model.quantized()),
        };
        self.model = model;
        self.state = state;
        Ok(())
    }

    /// Attaches a telemetry recorder. Every pushed frame bumps
    /// `stream.frames`; gated frames accumulate in the sampler and flush
    /// into `stream.frames_skipped` in one batch per decision (so the
    /// counter trails the true skip count by at most one horizon's
    /// frames); each decision records its latency into
    /// `stream.decision_seconds`, its model-forward and conformal stage
    /// latencies into the `inference` / `conformal` series of
    /// `stream.stage_seconds` (carried decisions skip the stage series
    /// and bump `stream.decisions_carried` instead), sets the
    /// `stream.window_len` gauge to the window length it scored, and
    /// splits the horizon's frames into `stream.frames_relayed` /
    /// `stream.frames_filtered`.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.telemetry = Some(telemetry);
    }

    /// Sets (or clears) the ambient trace id. While set, stage
    /// observations carry it as a histogram exemplar, tying tail-latency
    /// buckets back to the client push that produced them. Purely
    /// observational: decisions are bit-identical with or without it.
    pub fn set_trace(&mut self, trace: Option<u64>) {
        self.trace = trace;
    }

    /// Scores one record on the predictor's lane. The quantized lane uses
    /// the snapshot built at construction, so the per-frame cost is the
    /// int8 forward alone.
    fn score_one(&self, record: &Record) -> ScoredRecord {
        match &self.quantized {
            None => {
                let mut scored = score_records(&self.model, std::slice::from_ref(record), 1);
                scored.remove(0)
            }
            Some(q) => {
                let outputs = q.forward_inference(&[record]);
                scored_from_outputs(&outputs, 0, record)
            }
        }
    }

    /// Feeds one frame's features. Returns a decision when this frame is a
    /// prediction anchor.
    ///
    /// Under a gating [`SamplingPolicy`] a low-motion frame is
    /// acknowledged but not encoded: the stream position (and hence the
    /// anchor cadence) advances, the window buffer does not. An anchor
    /// whose candidate window drifted less than the gate threshold from
    /// the last scored anchor's window (per-dimension window means, see
    /// [`window_drift`](crate::sampling::window_drift)) reuses that
    /// anchor's predictions without a model forward. Carried predictions
    /// are an approximation the conformal guarantee still covers,
    /// because calibration replays the identical carry rule on the
    /// calibration split (see
    /// [`sampled_records`](crate::sampling::sampled_records)) — and the
    /// whole trajectory remains a pure function of the frame sequence
    /// and the policy, so decisions are bit-reproducible at any worker
    /// count. The gate stays open until the window first fills, so
    /// warmup is identical under every policy.
    pub fn push_frame(&mut self, features: Vec<f32>) -> Option<HorizonDecision> {
        if let Some(t) = &self.telemetry {
            t.add("stream.frames", 1);
        }
        self.stream_pos += 1;
        let warmed = self.buffer.is_full();
        if self.sampler.admit(&features, warmed) {
            self.buffer.push(features);
        }
        if !self.buffer.is_full() {
            return None;
        }
        if self.countdown > 0 {
            self.countdown -= 1;
            return None;
        }
        self.countdown = self.horizon - 1;

        let started = self.telemetry.as_deref().map(Telemetry::now);
        let anchor = self.stream_pos - 1;
        let m = self.sampler.window_len();
        let gated = !self.sampler.policy().is_fixed();
        // Under the Fixed policy skip building the candidate window until
        // the Record needs it — there is never a memo to drift against.
        let candidate = gated.then(|| self.buffer.covariates_last(m));
        let carried = match (&candidate, &self.carry, self.sampler.policy().gate()) {
            (Some(cand), Some(c), Some(g)) if c.m == m => {
                g.carries(crate::sampling::window_drift(cand, &c.covariates), c.run)
            }
            _ => false,
        };
        let mut scored_at = None;
        if carried {
            self.carry.as_mut().expect("carried implies memo").run += 1;
        } else {
            let covariates = candidate.unwrap_or_else(|| self.buffer.covariates_last(m));
            let record = Record {
                anchor,
                covariates,
                labels: vec![EventLabel::absent(); self.state.num_events()],
            };
            let scored = self.score_one(&record);
            scored_at = self.telemetry.as_deref().map(Telemetry::now);
            let hit = scored.scores.iter().any(|s| s.b >= HIT_TAU1);
            let predictions = self.state.predict(&scored, &self.strategy);
            self.carry = Some(CarriedAnchor {
                predictions,
                hit,
                m,
                covariates: record.covariates,
                run: 0,
            });
        }
        let memo = self.carry.as_ref().expect("anchor scored or carried");
        let decision = HorizonDecision {
            anchor,
            predictions: memo.predictions.clone(),
            degradation: DegradationTag::None,
        };
        let hit = memo.hit;
        self.sampler.observe_hit(hit);
        if let (Some(t), Some(t0)) = (&self.telemetry, started) {
            t.add("stream.decisions", 1);
            // Skips accumulate in the sampler and flush here in one
            // batch per decision, keeping gated streams' per-frame cost
            // identical to Fixed's.
            let skipped = self.sampler.frames_skipped();
            if skipped > self.skipped_flushed {
                t.add("stream.frames_skipped", skipped - self.skipped_flushed);
                self.skipped_flushed = skipped;
            }
            t.gauge_set("stream.window_len", m as f64);
            t.observe("stream.decision_seconds", t.now() - t0);
            if let Some(tm) = scored_at {
                let (infer, conformal) = (tm - t0, t.now() - tm);
                match self.trace {
                    Some(id) => {
                        t.observe_traced("stream.stage_seconds", "inference", infer, id);
                        t.observe_traced("stream.stage_seconds", "conformal", conformal, id);
                    }
                    None => {
                        t.observe_labeled("stream.stage_seconds", "inference", infer);
                        t.observe_labeled("stream.stage_seconds", "conformal", conformal);
                    }
                }
            } else {
                t.add("stream.decisions_carried", 1);
            }
            let relayed: u64 = decision
                .segments()
                .iter()
                .map(|&(_, s, e)| e.saturating_sub(s) + 1)
                .sum();
            t.add("stream.frames_relayed", relayed);
            t.add(
                "stream.frames_filtered",
                self.horizon.saturating_sub(relayed),
            );
        }
        Some(decision)
    }

    /// Like [`OnlinePredictor::push_frame`], but consults the resilient
    /// client's circuit breaker at decision time: while the breaker is
    /// open the decision is tagged [`DegradationTag::LocalOnly`] — the
    /// caller should trust the local C-REGRESS interval instead of
    /// relaying, because the CI is presumed down. `stream_fps` converts
    /// the anchor frame to the client's simulated clock.
    pub fn push_frame_resilient(
        &mut self,
        features: Vec<f32>,
        client: &mut ResilientCiClient,
        stream_fps: f64,
    ) -> Option<HorizonDecision> {
        let mut decision = self.push_frame(features)?;
        let now = decision.anchor as f64 / stream_fps.max(f64::MIN_POSITIVE);
        if client.breaker_state(now) == BreakerState::Open {
            decision.degradation = DegradationTag::LocalOnly;
        }
        Some(decision)
    }

    /// Convenience: drains a full feature matrix through the predictor,
    /// starting at row `from`, collecting every decision.
    pub fn run_over(&mut self, features: &Matrix, from: usize) -> Vec<HorizonDecision> {
        let mut out = Vec::new();
        for r in from..features.rows() {
            if let Some(d) = self.push_frame(features.row(r).to_vec()) {
                out.push(d);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{ExperimentConfig, TaskRun};
    use crate::tasks::task;

    #[test]
    fn decisions_fire_once_per_horizon() {
        let run = TaskRun::execute(&task("TA10").unwrap(), &ExperimentConfig::quick(61));
        let horizon = run.horizon;
        let window = run.window;
        let features = run.features.clone();
        let mut online =
            OnlinePredictor::new(run.model, run.state, Strategy::Ehcr { c: 0.9, alpha: 0.5 });

        let n = window + horizon * 3 + 10;
        let mut anchors = Vec::new();
        for r in 0..n {
            if let Some(d) = online.push_frame(features.row(r).to_vec()) {
                anchors.push(d.anchor);
            }
        }
        // First anchor when the window fills, then every `horizon` frames.
        assert_eq!(anchors.len(), 4);
        assert_eq!(anchors[0], (window - 1) as u64);
        for w in anchors.windows(2) {
            assert_eq!(w[1] - w[0], horizon as u64);
        }
    }

    #[test]
    fn online_matches_batch_predictions() {
        // Feeding the same frames online must reproduce the batch pipeline's
        // predictions for the same anchors.
        let run = TaskRun::execute(&task("TA10").unwrap(), &ExperimentConfig::quick(62));
        let strategy = Strategy::Ehcr { c: 0.9, alpha: 0.5 };
        let features = run.features.clone();
        let state = run.state.clone();

        let mut online = OnlinePredictor::new(run.model, state.clone(), strategy);
        let decisions = online.run_over(&features, 0);
        assert!(!decisions.is_empty());

        // Batch path: extract the record at the first online anchor.
        use eventhit_video::records::extract_record;
        let d = &decisions[1];
        let record = extract_record(&run.stream, &features, d.anchor, run.window, run.horizon);
        // Re-load the model via a fresh run? The model moved into `online`;
        // instead compare against scores recomputed through the online
        // model by replaying.
        let mut online2 = OnlinePredictor::new(
            {
                // Rebuild an identical model from the same experiment.
                let run2 = TaskRun::execute(&task("TA10").unwrap(), &ExperimentConfig::quick(62));
                run2.model
            },
            state,
            strategy,
        );
        let decisions2 = online2.run_over(&features, 0);
        assert_eq!(decisions[1], decisions2[1]);
        assert_eq!(record.anchor, d.anchor);
    }

    #[test]
    fn telemetry_counts_frames_and_decisions() {
        use eventhit_telemetry::Telemetry;
        use std::sync::Arc;

        let run = TaskRun::execute(&task("TA10").unwrap(), &ExperimentConfig::quick(61));
        let horizon = run.horizon;
        let window = run.window;
        let features = run.features.clone();
        let mut online =
            OnlinePredictor::new(run.model, run.state, Strategy::Ehcr { c: 0.9, alpha: 0.5 });
        let tel = Arc::new(Telemetry::new());
        online.set_telemetry(Arc::clone(&tel));

        let n = window + horizon * 2 + 1;
        let decisions = (0..n)
            .filter_map(|r| online.push_frame(features.row(r).to_vec()))
            .count();
        let snap = tel.snapshot();
        assert_eq!(snap.counter("stream.frames"), Some(n as u64));
        assert_eq!(snap.counter("stream.decisions"), Some(decisions as u64));
        let h = snap.histogram("stream.decision_seconds").unwrap();
        assert_eq!(h.count(), decisions as u64);
        // Per decision, relayed + filtered covers at least the horizon
        // (overlapping event segments can only push it above).
        let relayed = snap.counter("stream.frames_relayed").unwrap_or(0);
        let filtered = snap.counter("stream.frames_filtered").unwrap_or(0);
        assert!(relayed + filtered >= decisions as u64 * horizon as u64);
    }

    #[test]
    fn export_restore_resumes_bit_identically() {
        // Predictor A runs straight through; predictor B is checkpointed
        // mid-stream, rebuilt from scratch, restored, and resumed. Their
        // decisions must match bit-for-bit — the invariant durable
        // serving recovery relies on.
        let strategy = Strategy::Ehcr { c: 0.9, alpha: 0.5 };
        let run = TaskRun::execute(&task("TA10").unwrap(), &ExperimentConfig::quick(64));
        let features = run.features.clone();
        let cut = run.window + run.horizon + 3; // mid-horizon, buffer full
        let n = (run.window + run.horizon * 4).min(features.rows());

        let mut straight = OnlinePredictor::new(run.model.clone(), run.state.clone(), strategy);
        let baseline: Vec<_> = (0..n)
            .filter_map(|r| straight.push_frame(features.row(r).to_vec()))
            .collect();

        let mut first = OnlinePredictor::new(run.model.clone(), run.state.clone(), strategy);
        let mut decisions: Vec<_> = (0..cut)
            .filter_map(|r| first.push_frame(features.row(r).to_vec()))
            .collect();
        let st = first.export_state();
        assert_eq!(st.fingerprint(), first.export_state().fingerprint());
        drop(first);

        let mut resumed = OnlinePredictor::new(run.model, run.state, strategy);
        resumed.restore_state(&st).unwrap();
        assert_eq!(resumed.export_state(), st, "restore must round-trip");
        decisions.extend((cut..n).filter_map(|r| resumed.push_frame(features.row(r).to_vec())));

        assert_eq!(decisions, baseline);
    }

    #[test]
    fn restore_rejects_mismatched_state() {
        let run = TaskRun::execute(&task("TA10").unwrap(), &ExperimentConfig::quick(64));
        let horizon = run.horizon as u64;
        let dim = run.features.cols();
        let mut p =
            OnlinePredictor::new(run.model, run.state, Strategy::Ehcr { c: 0.9, alpha: 0.5 });
        let bad_dim = PredictorState {
            rows: vec![vec![0.0; dim + 1]],
            frames_seen: 1,
            countdown: 0,
        };
        assert!(p.restore_state(&bad_dim).is_err());
        let bad_countdown = PredictorState {
            rows: vec![],
            frames_seen: 0,
            countdown: horizon,
        };
        assert!(p.restore_state(&bad_countdown).is_err());
    }

    #[test]
    fn reload_model_swaps_weights_and_keeps_cadence() {
        let strategy = Strategy::Ehcr { c: 0.9, alpha: 0.5 };
        let run_a = TaskRun::execute(&task("TA10").unwrap(), &ExperimentConfig::quick(65));
        let run_b = TaskRun::execute(&task("TA10").unwrap(), &ExperimentConfig::quick(66));
        let features = run_a.features.clone();
        let n = run_a.window + run_a.horizon * 3;
        let swap_at = run_a.window + run_a.horizon + 1;

        let mut p = OnlinePredictor::new(run_a.model.clone(), run_a.state.clone(), strategy);
        let mut anchors = Vec::new();
        for r in 0..n {
            if r == swap_at {
                p.reload_model(run_b.model.clone(), run_b.state.clone())
                    .unwrap();
            }
            if let Some(d) = p.push_frame(features.row(r).to_vec()) {
                anchors.push(d.anchor);
            }
        }
        // The anchor cadence is untouched by the swap.
        assert_eq!(anchors[0], (run_a.window - 1) as u64);
        for w in anchors.windows(2) {
            assert_eq!(w[1] - w[0], run_a.horizon as u64);
        }

        // A config-incompatible model is rejected.
        let run_small = TaskRun::execute(&task("TA1").unwrap(), &ExperimentConfig::quick(67));
        let cfg_a = run_a.model.config().clone();
        let cfg_s = run_small.model.config().clone();
        let mut q = OnlinePredictor::new(run_a.model, run_a.state, strategy);
        if (
            cfg_s.input_dim,
            cfg_s.window,
            cfg_s.horizon,
            cfg_s.num_events,
        ) != (
            cfg_a.input_dim,
            cfg_a.window,
            cfg_a.horizon,
            cfg_a.num_events,
        ) {
            assert!(q.reload_model(run_small.model, run_small.state).is_err());
        }
    }

    #[test]
    fn segments_are_absolute() {
        let d = HorizonDecision {
            anchor: 100,
            predictions: vec![
                IntervalPrediction {
                    present: true,
                    start: 5,
                    end: 10,
                },
                IntervalPrediction::absent(),
            ],
            degradation: crate::resilient::DegradationTag::None,
        };
        assert_eq!(d.segments(), vec![(0usize, 105u64, 110u64)]);
    }

    #[test]
    fn open_breaker_tags_decisions_local_only() {
        use crate::faults::FaultConfig;
        use crate::resilient::{DegradationTag, ResilienceConfig, ResilientCiClient};
        use eventhit_video::detector::StageModel;

        let run = TaskRun::execute(&task("TA10").unwrap(), &ExperimentConfig::quick(63));
        let mut online =
            OnlinePredictor::new(run.model, run.state, Strategy::Ehcr { c: 0.9, alpha: 0.5 });

        // A dead service trips the breaker after a few submissions.
        let faults = FaultConfig {
            p_good_to_bad: 1.0,
            p_bad_to_good: 0.0,
            bad_loss: 1.0,
            ..FaultConfig::reliable()
        };
        let mut client = ResilientCiClient::new(
            faults,
            ResilienceConfig::default(),
            StageModel::new("ci", 100.0),
            64,
        )
        .unwrap();
        // Trip the breaker with direct submissions.
        let mut t = 0.0;
        for _ in 0..10 {
            client.submit(50, t);
            t += 1.0;
        }
        let features = run.features.clone();
        let mut tags = Vec::new();
        for r in 0..features.rows().min(2000) {
            if let Some(d) = online.push_frame_resilient(features.row(r).to_vec(), &mut client, 1e9)
            {
                // Enormous fps => decision time ~0, inside the open window.
                tags.push(d.degradation);
            }
        }
        assert!(!tags.is_empty());
        assert!(
            tags.iter().all(|&t| t == DegradationTag::LocalOnly),
            "open breaker must force local-only decisions: {tags:?}"
        );
    }
}
