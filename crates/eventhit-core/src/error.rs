//! The crate's typed error vocabulary.
//!
//! Fallible paths (model persistence, stream marshalling, conformal
//! fitting, the resilient CI client) return [`CoreError`] instead of
//! panicking, so injected faults and malformed inputs surface as values a
//! caller can branch on. Hand-rolled on `std` only — the workspace is
//! hermetic, so no `thiserror`.

use std::fmt;
use std::io;

/// Everything that can go wrong inside `eventhit-core`.
#[derive(Debug)]
pub enum CoreError {
    /// An underlying I/O failure (model persistence).
    Io(io::Error),
    /// A persisted model file is malformed or from an unknown version.
    ModelFormat(&'static str),
    /// A persisted payload's checksum does not match its contents — the
    /// file was corrupted (or truncated mid-payload) after it was written.
    ChecksumMismatch {
        /// Checksum recorded in the file header.
        expected: u32,
        /// Checksum computed over the payload actually read.
        got: u32,
    },
    /// A record's per-event vectors disagree with the fitted state.
    ShapeMismatch {
        /// What was being validated (e.g. `"record scores"`).
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Observed length.
        got: usize,
    },
    /// A configuration value is outside its valid domain.
    InvalidConfig(String),
    /// A task id is not in the Table II registry.
    UnknownTask(String),
    /// A dataset split came out empty (scale too small for the stride).
    EmptySplit {
        /// Task id whose split collapsed.
        task: String,
    },
    /// A marshalling range does not leave room for the collection window.
    WindowUnderflow {
        /// Requested start frame.
        from: u64,
        /// Collection-window size.
        window: usize,
    },
    /// A marshalling range runs past the end of the stream.
    StreamBounds {
        /// Requested end frame (exclusive).
        to: u64,
        /// Stream length.
        len: u64,
    },
    /// The circuit breaker is open: the CI is presumed down.
    CircuitOpen,
    /// A submission blew its end-to-end deadline.
    DeadlineExceeded {
        /// The deadline that was exceeded (seconds).
        deadline: f64,
    },
    /// Every allowed attempt failed.
    RetriesExhausted {
        /// Attempts made before giving up.
        attempts: u32,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Io(e) => write!(f, "i/o error: {e}"),
            CoreError::ModelFormat(msg) => write!(f, "bad model file: {msg}"),
            CoreError::ChecksumMismatch { expected, got } => write!(
                f,
                "checksum mismatch: header says {expected:#010x}, payload hashes to {got:#010x}"
            ),
            CoreError::ShapeMismatch {
                what,
                expected,
                got,
            } => write!(
                f,
                "shape mismatch in {what}: expected {expected}, got {got}"
            ),
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::UnknownTask(id) => write!(f, "unknown task id {id:?}"),
            CoreError::EmptySplit { task } => {
                write!(f, "{task}: empty split (scale too small?)")
            }
            CoreError::WindowUnderflow { from, window } => write!(
                f,
                "marshal range starts at frame {from}, before a full {window}-frame window"
            ),
            CoreError::StreamBounds { to, len } => {
                write!(
                    f,
                    "marshal range ends at frame {to}, beyond stream length {len}"
                )
            }
            CoreError::CircuitOpen => write!(f, "circuit breaker open: CI presumed unavailable"),
            CoreError::DeadlineExceeded { deadline } => {
                write!(f, "submission deadline of {deadline} s exceeded")
            }
            CoreError::RetriesExhausted { attempts } => {
                write!(f, "all {attempts} attempts failed")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CoreError {
    fn from(e: io::Error) -> Self {
        CoreError::Io(e)
    }
}

/// Shorthand used throughout the crate.
pub type CoreResult<T> = Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::ShapeMismatch {
            what: "record scores",
            expected: 3,
            got: 1,
        };
        assert!(e.to_string().contains("record scores"));
        assert!(e.to_string().contains("expected 3"));
        assert!(CoreError::CircuitOpen.to_string().contains("circuit"));
        assert!(CoreError::UnknownTask("XX".into())
            .to_string()
            .contains("XX"));
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let inner = io::Error::new(io::ErrorKind::UnexpectedEof, "short read");
        let e: CoreError = inner.into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("short read"));
    }

    #[test]
    fn non_io_errors_have_no_source() {
        assert!(std::error::Error::source(&CoreError::CircuitOpen).is_none());
    }
}
