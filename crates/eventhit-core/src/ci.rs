//! The cloud-inference (CI) simulator: per-frame pricing and stage timing.
//!
//! The paper's CI is a subscription service (Amazon Rekognition-class)
//! hosting an accurate, heavyweight event-detection model. We simulate it
//! as an oracle (it detects exactly the planted ground truth on the frames
//! it receives) with the paper's pricing (US $0.001/frame, §VI.G) and a
//! throughput model calibrated to Fig. 10's stage proportions.

use eventhit_video::detector::StageModel;

/// Amazon Rekognition pricing used in the paper's case study (§VI.G).
pub const PRICE_PER_FRAME_USD: f64 = 0.001;

/// Cost/throughput model of the full pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct CiConfig {
    /// Price charged per frame relayed to the CI.
    pub price_per_frame: f64,
    /// Throughput of the CI's event-detection model.
    pub ci: StageModel,
    /// Throughput of local feature extraction (lightweight detector).
    pub feature_extraction: StageModel,
}

impl Default for CiConfig {
    fn default() -> Self {
        CiConfig {
            price_per_frame: PRICE_PER_FRAME_USD,
            ci: StageModel::i3d_ci(),
            feature_extraction: StageModel::new("YOLOv3-class feature extraction", 100.0),
        }
    }
}

/// Accounted cost of processing a set of horizons.
#[derive(Debug, Clone, PartialEq)]
pub struct CostReport {
    /// Frames relayed to the CI.
    pub frames_relayed: u64,
    /// Total monetary expense (USD).
    pub expense: f64,
    /// Simulated seconds spent in feature extraction.
    pub feature_seconds: f64,
    /// Measured (or estimated) seconds spent in EventHit inference.
    pub predictor_seconds: f64,
    /// Simulated seconds spent in the CI.
    pub ci_seconds: f64,
    /// Frames covered by the processed horizons.
    pub frames_covered: u64,
}

impl CostReport {
    /// Total wall-clock seconds across all stages.
    pub fn total_seconds(&self) -> f64 {
        self.feature_seconds + self.predictor_seconds + self.ci_seconds
    }

    /// End-to-end throughput: stream frames covered per second of total
    /// processing (the paper's `FPS` measure, §VI.C).
    pub fn fps(&self) -> f64 {
        let t = self.total_seconds();
        if t <= 0.0 {
            f64::INFINITY
        } else {
            self.frames_covered as f64 / t
        }
    }

    /// Fraction of total time per stage:
    /// `(feature extraction, predictor, CI)` — Fig. 10's quantities.
    pub fn stage_fractions(&self) -> (f64, f64, f64) {
        let t = self.total_seconds();
        if t <= 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.feature_seconds / t,
            self.predictor_seconds / t,
            self.ci_seconds / t,
        )
    }
}

impl CiConfig {
    /// Accounts the cost of `num_horizons` prediction episodes:
    /// each extracts features for a collection window of `window` frames,
    /// runs the predictor (`predictor_seconds` measured externally), covers
    /// `horizon` stream frames, and relays `frames_relayed` frames total to
    /// the CI.
    pub fn account(
        &self,
        num_horizons: usize,
        window: usize,
        horizon: usize,
        frames_relayed: u64,
        predictor_seconds: f64,
    ) -> CostReport {
        let feature_frames = (num_horizons * window) as u64;
        CostReport {
            frames_relayed,
            expense: frames_relayed as f64 * self.price_per_frame,
            feature_seconds: self.feature_extraction.seconds_for(feature_frames),
            predictor_seconds,
            ci_seconds: self.ci.seconds_for(frames_relayed),
            frames_covered: (num_horizons * horizon) as u64,
        }
    }

    /// Cost of the brute-force baseline: every frame of every horizon is
    /// relayed, no local processing at all.
    pub fn account_brute_force(&self, num_horizons: usize, horizon: usize) -> CostReport {
        let frames = (num_horizons * horizon) as u64;
        CostReport {
            frames_relayed: frames,
            expense: frames as f64 * self.price_per_frame,
            feature_seconds: 0.0,
            predictor_seconds: 0.0,
            ci_seconds: self.ci.seconds_for(frames),
            frames_covered: frames,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expense_follows_pricing() {
        let ci = CiConfig::default();
        let report = ci.account(10, 25, 500, 1000, 0.5);
        assert!((report.expense - 1.0).abs() < 1e-12); // 1000 * $0.001
        assert_eq!(report.frames_covered, 5000);
        assert_eq!(report.frames_relayed, 1000);
    }

    #[test]
    fn stage_times_follow_throughputs() {
        let ci = CiConfig {
            price_per_frame: 0.001,
            ci: StageModel::new("ci", 10.0),
            feature_extraction: StageModel::new("fe", 100.0),
        };
        let report = ci.account(4, 50, 200, 400, 1.0);
        assert!((report.feature_seconds - 2.0).abs() < 1e-12); // 200 / 100
        assert!((report.ci_seconds - 40.0).abs() < 1e-12); // 400 / 10
        assert!((report.total_seconds() - 43.0).abs() < 1e-12);
        assert!((report.fps() - 800.0 / 43.0).abs() < 1e-9);
    }

    #[test]
    fn stage_fractions_sum_to_one() {
        let report = CiConfig::default().account(10, 25, 500, 800, 0.2);
        let (fe, pr, ci) = report.stage_fractions();
        assert!((fe + pr + ci - 1.0).abs() < 1e-12);
        // CI should dominate with these settings (Fig. 10 shape).
        assert!(ci > 0.8, "ci fraction {ci}");
    }

    #[test]
    fn brute_force_relays_everything() {
        let ci = CiConfig::default();
        let bf = ci.account_brute_force(10, 500);
        assert_eq!(bf.frames_relayed, 5000);
        assert_eq!(bf.frames_covered, 5000);
        assert!((bf.fps() - ci.ci.fps).abs() < 1e-9);
    }

    #[test]
    fn relaying_less_is_faster_and_cheaper() {
        let ci = CiConfig::default();
        let lean = ci.account(100, 25, 500, 2_000, 1.0);
        let heavy = ci.account(100, 25, 500, 30_000, 1.0);
        assert!(lean.fps() > heavy.fps());
        assert!(lean.expense < heavy.expense);
    }

    #[test]
    fn zero_work_report() {
        let report = CiConfig::default().account(0, 25, 500, 0, 0.0);
        assert_eq!(report.expense, 0.0);
        assert_eq!(report.total_seconds(), 0.0);
        assert!(report.fps().is_infinite());
        assert_eq!(report.stage_fractions(), (0.0, 0.0, 0.0));
    }
}
