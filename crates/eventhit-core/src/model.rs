//! The EventHit network (paper §III, Fig. 3).
//!
//! A shared sub-network — LSTM encoder over the collection window, a fully
//! connected layer with dropout producing the latent vector `z` — feeds `K`
//! event-specific sub-networks. Each head consumes `z ⊕ X_n` (the latent
//! concatenated with the *last* feature vector of the window) and emits,
//! through a sigmoid, the vector `Θ_k = [b_k, θ_{k,1}, …, θ_{k,H}]`:
//! `b_k` scores the event's occurrence anywhere in the horizon and
//! `θ_{k,v}` scores its occurrence at horizon offset `v`.

use eventhit_rng::rngs::StdRng;
use eventhit_rng::SeedableRng;

use eventhit_nn::activation::Activation;
use eventhit_nn::dense::{Dense, QuantizedDense};
use eventhit_nn::dropout::Dropout;
use eventhit_nn::gru::{Gru, QuantizedGru};
use eventhit_nn::init::Init;
use eventhit_nn::lstm::{Lstm, QuantizedLstm};
use eventhit_nn::matrix::Matrix;
use eventhit_nn::optimizer::ParamMut;

use eventhit_video::records::Record;

/// Hyper-parameters of the EventHit network.
#[derive(Debug, Clone, PartialEq)]
pub struct EventHitConfig {
    /// Feature dimensionality `D`.
    pub input_dim: usize,
    /// Collection-window length `M`.
    pub window: usize,
    /// Time-horizon length `H`.
    pub horizon: usize,
    /// Number of event types `K`.
    pub num_events: usize,
    /// LSTM hidden size.
    pub hidden_dim: usize,
    /// Latent dimension of `z` after the shared fully connected layer.
    pub shared_dim: usize,
    /// Dropout probability on `z` during training.
    pub dropout: f32,
}

impl EventHitConfig {
    /// A reasonable default for the synthetic datasets: 48 LSTM units,
    /// 32-dim latent, 20% dropout.
    pub fn new(input_dim: usize, window: usize, horizon: usize, num_events: usize) -> Self {
        EventHitConfig {
            input_dim,
            window,
            horizon,
            num_events,
            hidden_dim: 48,
            shared_dim: 32,
            dropout: 0.2,
        }
    }

    fn validate(&self) {
        assert!(self.input_dim > 0 && self.window > 0 && self.horizon > 0);
        assert!(self.num_events > 0, "at least one event type required");
        assert!(self.hidden_dim > 0 && self.shared_dim > 0);
    }
}

/// Which recurrent encoder the shared sub-network uses. The paper uses an
/// LSTM (§III); GRU is provided for the encoder-choice ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EncoderKind {
    /// Long short-term memory (the paper's choice).
    #[default]
    Lstm,
    /// Gated recurrent unit (ablation alternative).
    Gru,
}

/// The recurrent encoder, dispatching on [`EncoderKind`].
#[derive(Clone)]
enum Encoder {
    Lstm(Lstm),
    Gru(Gru),
}

impl Encoder {
    fn forward(&mut self, xs: &[Matrix]) -> Matrix {
        match self {
            Encoder::Lstm(l) => l.forward(xs),
            Encoder::Gru(g) => g.forward(xs),
        }
    }

    fn forward_inference(&self, xs: &[Matrix]) -> Matrix {
        match self {
            Encoder::Lstm(l) => l.forward_inference(xs),
            Encoder::Gru(g) => g.forward_inference(xs),
        }
    }

    fn backward_last(&mut self, dh: &Matrix) {
        match self {
            Encoder::Lstm(l) => {
                l.backward_last(dh);
            }
            Encoder::Gru(g) => {
                g.backward_last(dh);
            }
        }
    }

    fn zero_grad(&mut self) {
        match self {
            Encoder::Lstm(l) => l.zero_grad(),
            Encoder::Gru(g) => g.zero_grad(),
        }
    }

    fn params_mut(&mut self) -> Vec<ParamMut<'_>> {
        match self {
            Encoder::Lstm(l) => l.params_mut(),
            Encoder::Gru(g) => g.params_mut(),
        }
    }

    fn param_count(&self) -> usize {
        match self {
            Encoder::Lstm(l) => l.param_count(),
            Encoder::Gru(g) => g.param_count(),
        }
    }

    fn kind(&self) -> EncoderKind {
        match self {
            Encoder::Lstm(_) => EncoderKind::Lstm,
            Encoder::Gru(_) => EncoderKind::Gru,
        }
    }
}

/// The EventHit network.
///
/// Cloning copies the full parameter set plus training state (RNG,
/// caches); multi-stream lanes clone a trained model so each lane can
/// score independently on its own thread.
#[derive(Clone)]
pub struct EventHit {
    config: EventHitConfig,
    encoder: Encoder,
    shared_fc: Dense,
    dropout: Dropout,
    heads: Vec<Dense>,
    rng: StdRng,
    /// Cache of the last-forward concatenated input (training mode).
    cache_concat: Option<Matrix>,
}

impl EventHit {
    /// Creates a network with freshly initialized weights and the paper's
    /// LSTM encoder.
    pub fn new(config: EventHitConfig, seed: u64) -> Self {
        Self::with_encoder(config, EncoderKind::Lstm, seed)
    }

    /// Creates a network with the chosen recurrent encoder.
    pub fn with_encoder(config: EventHitConfig, kind: EncoderKind, seed: u64) -> Self {
        config.validate();
        let mut rng = StdRng::seed_from_u64(seed);
        let encoder = match kind {
            EncoderKind::Lstm => {
                Encoder::Lstm(Lstm::new(config.input_dim, config.hidden_dim, &mut rng))
            }
            EncoderKind::Gru => {
                Encoder::Gru(Gru::new(config.input_dim, config.hidden_dim, &mut rng))
            }
        };
        // Tanh keeps the latent bounded and kink-free (the paper does not
        // specify the shared layer's activation).
        let shared_fc = Dense::new(
            config.hidden_dim,
            config.shared_dim,
            Activation::Tanh,
            Init::XavierUniform,
            &mut rng,
        );
        let dropout = Dropout::new(config.dropout);
        let head_in = config.shared_dim + config.input_dim;
        let heads = (0..config.num_events)
            .map(|_| {
                Dense::new(
                    head_in,
                    1 + config.horizon,
                    Activation::Sigmoid,
                    Init::XavierUniform,
                    &mut rng,
                )
            })
            .collect();
        EventHit {
            config,
            encoder,
            shared_fc,
            dropout,
            heads,
            rng,
            cache_concat: None,
        }
    }

    /// The network configuration.
    pub fn config(&self) -> &EventHitConfig {
        &self.config
    }

    /// Which recurrent encoder this network uses.
    pub fn encoder_kind(&self) -> EncoderKind {
        self.encoder.kind()
    }

    /// Total number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.encoder.param_count()
            + self.shared_fc.param_count()
            + self.heads.iter().map(Dense::param_count).sum::<usize>()
    }

    /// Switches dropout between training and inference behaviour.
    pub fn set_training(&mut self, training: bool) {
        self.dropout.set_training(training);
    }

    /// Assembles the LSTM input sequence from a batch of records:
    /// `xs[t]` is the `batch x D` matrix of the `t`-th window frame.
    fn batch_sequence(&self, records: &[&Record]) -> Vec<Matrix> {
        batch_sequence(&self.config, records)
    }

    /// Forward pass over a batch of records, caching intermediates for
    /// [`EventHit::backward`]. Returns one `batch x (1 + H)` sigmoid output
    /// per event head.
    pub fn forward(&mut self, records: &[&Record]) -> Vec<Matrix> {
        assert!(!records.is_empty(), "empty batch");
        let xs = self.batch_sequence(records);
        let h = self.encoder.forward(&xs);
        let z = self.shared_fc.forward(&h);
        let z = self.dropout.forward(&z, &mut self.rng);
        let concat = z.hcat(&xs[xs.len() - 1]);
        let outputs = self
            .heads
            .iter_mut()
            .map(|head| head.forward(&concat))
            .collect();
        self.cache_concat = Some(concat);
        outputs
    }

    /// Inference-only forward pass (dropout is never applied, no caching
    /// of the training graph). Pure `&self`, so one trained model can be
    /// shared across threads to score batches in parallel; the arithmetic
    /// matches [`EventHit::forward`] with dropout off, bit for bit.
    pub fn forward_inference(&self, records: &[&Record]) -> Vec<Matrix> {
        assert!(!records.is_empty(), "empty batch");
        let xs = self.batch_sequence(records);
        let h = self.encoder.forward_inference(&xs);
        let z = self.shared_fc.forward_inference(&h);
        let concat = z.hcat(&xs[xs.len() - 1]);
        self.heads
            .iter()
            .map(|head| head.forward_inference(&concat))
            .collect()
    }

    /// Backward pass: `grads[k]` is dL/d(output of head `k`). Accumulates
    /// all parameter gradients.
    pub fn backward(&mut self, grads: &[Matrix]) {
        assert_eq!(
            grads.len(),
            self.heads.len(),
            "one gradient per head required"
        );
        let concat = self
            .cache_concat
            .as_ref()
            .expect("EventHit::backward before forward")
            .clone();
        let mut d_concat = Matrix::zeros(concat.rows(), concat.cols());
        for (head, g) in self.heads.iter_mut().zip(grads) {
            d_concat.add_assign(&head.backward(g));
        }
        let (d_z, _d_xlast) = d_concat.hsplit(self.config.shared_dim);
        let d_z = self.dropout.backward(&d_z);
        let d_h = self.shared_fc.backward(&d_z);
        self.encoder.backward_last(&d_h);
    }

    /// Zeros all accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.encoder.zero_grad();
        self.shared_fc.zero_grad();
        for head in &mut self.heads {
            head.zero_grad();
        }
    }

    /// All `(parameter, gradient)` pairs, in a stable order.
    pub fn params_mut(&mut self) -> Vec<ParamMut<'_>> {
        let mut params = self.encoder.params_mut();
        params.extend(self.shared_fc.params_mut());
        for head in &mut self.heads {
            params.extend(head.params_mut());
        }
        params
    }

    /// Snapshots the trained network onto the int8 quantized inference
    /// lane (see [`eventhit_nn::quant::InferenceLane`]). Every weight
    /// matrix is quantized once; the snapshot is immutable, `Send + Sync`,
    /// and cheap to clone, so build it before a scoring loop and reuse it.
    pub fn quantized(&self) -> QuantizedEventHit {
        let encoder = match &self.encoder {
            Encoder::Lstm(l) => QuantizedEncoder::Lstm(l.quantized()),
            Encoder::Gru(g) => QuantizedEncoder::Gru(g.quantized()),
        };
        QuantizedEventHit {
            config: self.config.clone(),
            encoder,
            shared_fc: self.shared_fc.quantized(),
            heads: self.heads.iter().map(Dense::quantized).collect(),
        }
    }
}

/// Assembles the encoder input sequence from a batch of records:
/// `xs[t]` is the `batch x D` matrix of the `t`-th window frame.
///
/// The sequence length is taken from the records themselves, not the
/// config: a batch of shrunken `m`-row windows (`1 <= m <= M`, the
/// adaptive-windowing path of `eventhit-core::sampling`) runs the
/// recurrent encoder for `m` steps. All records in one batch must share
/// the same window length; the full-window case (`m == M`) is
/// bit-identical to the historical fixed-shape behaviour.
fn batch_sequence(config: &EventHitConfig, records: &[&Record]) -> Vec<Matrix> {
    let m = records[0].covariates.rows();
    let d = config.input_dim;
    assert!(
        m >= 1 && m <= config.window,
        "window length {m} outside [1, {}]",
        config.window
    );
    let batch = records.len();
    (0..m)
        .map(|t| {
            let mut x = Matrix::zeros(batch, d);
            for (i, r) in records.iter().enumerate() {
                assert_eq!(
                    r.covariates.shape(),
                    (m, d),
                    "record covariates must be {m}x{d} (uniform per batch)"
                );
                x.set_row(i, r.covariates.row(t));
            }
            x
        })
        .collect()
}

/// The quantized recurrent encoder, mirroring [`Encoder`].
#[derive(Clone)]
enum QuantizedEncoder {
    Lstm(QuantizedLstm),
    Gru(QuantizedGru),
}

impl QuantizedEncoder {
    fn forward(&self, xs: &[Matrix]) -> Matrix {
        match self {
            QuantizedEncoder::Lstm(l) => l.forward(xs),
            QuantizedEncoder::Gru(g) => g.forward(xs),
        }
    }
}

/// An int8-weight snapshot of a trained [`EventHit`]: the quantized
/// inference lane. Produced by [`EventHit::quantized`]; runs the same
/// architecture with `i8` weight panels and f32 accumulation, so scores
/// approximate the exact lane's within the per-row quantization step.
/// Pair with conformal recalibration on quantized scores (see
/// `TaskRun::state_for_lane`) to keep the coverage guarantee.
#[derive(Clone)]
pub struct QuantizedEventHit {
    config: EventHitConfig,
    encoder: QuantizedEncoder,
    shared_fc: QuantizedDense,
    heads: Vec<QuantizedDense>,
}

impl QuantizedEventHit {
    /// The network configuration (shared with the source model).
    pub fn config(&self) -> &EventHitConfig {
        &self.config
    }

    /// Quantized inference forward pass, mirroring
    /// [`EventHit::forward_inference`]: one `batch x (1 + H)` sigmoid
    /// output per event head. Pure `&self` and sequential per batch, so
    /// results are bit-identical across worker counts.
    pub fn forward_inference(&self, records: &[&Record]) -> Vec<Matrix> {
        assert!(!records.is_empty(), "empty batch");
        let xs = batch_sequence(&self.config, records);
        let h = self.encoder.forward(&xs);
        let z = self.shared_fc.forward(&h);
        let concat = z.hcat(&xs[xs.len() - 1]);
        self.heads
            .iter()
            .map(|head| head.forward(&concat))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventhit_video::records::EventLabel;

    fn record(m: usize, d: usize, value: f32) -> Record {
        Record {
            anchor: 0,
            covariates: Matrix::filled(m, d, value),
            labels: vec![EventLabel::absent()],
        }
    }

    fn tiny_config() -> EventHitConfig {
        EventHitConfig {
            input_dim: 4,
            window: 5,
            horizon: 10,
            num_events: 2,
            hidden_dim: 6,
            shared_dim: 5,
            dropout: 0.0,
        }
    }

    #[test]
    fn forward_output_shapes() {
        let mut model = EventHit::new(tiny_config(), 0);
        let r1 = record(5, 4, 0.1);
        let r2 = record(5, 4, 0.9);
        let outs = model.forward(&[&r1, &r2]);
        assert_eq!(outs.len(), 2);
        for o in &outs {
            assert_eq!(o.shape(), (2, 11));
            assert!(o.as_slice().iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn inference_matches_forward_without_dropout() {
        let mut model = EventHit::new(tiny_config(), 1);
        let r = record(5, 4, 0.3);
        let a = model.forward(&[&r]);
        let b = model.forward_inference(&[&r]);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn dropout_only_active_in_training() {
        let mut cfg = tiny_config();
        cfg.dropout = 0.5;
        let mut model = EventHit::new(cfg, 2);
        let r = record(5, 4, 0.5);
        // Training forwards are stochastic: across several passes the
        // sampled masks must produce at least two distinct outputs.
        let passes: Vec<Matrix> = (0..8).map(|_| model.forward(&[&r]).remove(0)).collect();
        assert!(
            passes.iter().any(|p| *p != passes[0]),
            "dropout should perturb training forward passes"
        );
        // Inference passes are deterministic.
        let c = model.forward_inference(&[&r]);
        let d = model.forward_inference(&[&r]);
        assert_eq!(c[0], d[0]);
    }

    #[test]
    fn gradients_flow_to_all_parameters() {
        let mut model = EventHit::new(tiny_config(), 3);
        let r1 = record(5, 4, 0.2);
        let r2 = record(5, 4, -0.4);
        model.zero_grad();
        let outs = model.forward(&[&r1, &r2]);
        // Loss = sum of outputs; dL/dout = 1.
        let grads: Vec<Matrix> = outs
            .iter()
            .map(|o| Matrix::filled(o.rows(), o.cols(), 1.0))
            .collect();
        model.backward(&grads);
        let mut nonzero_params = 0;
        for p in model.params_mut() {
            if p.grad.max_abs() > 0.0 {
                nonzero_params += 1;
            }
        }
        // LSTM (3) + shared (2) + 2 heads (2 each) = 9 parameter tensors.
        assert_eq!(
            nonzero_params, 9,
            "all parameter tensors should receive gradient"
        );
    }

    #[test]
    fn analytic_gradients_match_finite_differences() {
        use eventhit_nn::gradcheck::check_gradients;
        let mut model = EventHit::new(tiny_config(), 4);
        let r1 = record(5, 4, 0.2);
        let r2 = record(5, 4, 0.7);
        let loss_fn = |m: &mut EventHit| {
            let outs = m.forward(&[&r1, &r2]);
            outs.iter()
                .map(|o| 0.5 * o.as_slice().iter().map(|&v| v * v).sum::<f32>())
                .sum()
        };
        let grad_fn = |m: &mut EventHit| {
            m.zero_grad();
            let outs = m.forward(&[&r1, &r2]);
            m.backward(&outs);
        };
        let err = check_gradients(&mut model, loss_fn, grad_fn, |m| m.params_mut(), 1e-2);
        assert!(err < 5e-2, "max rel err {err}");
    }

    #[test]
    fn inference_accepts_shrunken_windows() {
        // The adaptive-windowing path feeds m < M rows: the encoder runs
        // m steps and the heads consume z ⊕ (last row), so output shapes
        // are unchanged and results are deterministic.
        let model = EventHit::new(tiny_config(), 7);
        for m in 1..=5usize {
            let r = record(m, 4, 0.3);
            let outs = model.forward_inference(&[&r]);
            assert_eq!(outs.len(), 2);
            for o in &outs {
                assert_eq!(o.shape(), (1, 11));
            }
            let again = model.forward_inference(&[&r]);
            assert_eq!(outs, again);
        }
        // The quantized lane accepts the same shrunken windows.
        let q = model.quantized();
        let r = record(2, 4, 0.3);
        let outs = q.forward_inference(&[&r]);
        assert_eq!(outs[0].shape(), (1, 11));
    }

    #[test]
    #[should_panic(expected = "uniform per batch")]
    fn batch_rejects_mixed_window_lengths() {
        let model = EventHit::new(tiny_config(), 8);
        let a = record(5, 4, 0.1);
        let b = record(3, 4, 0.1);
        let _ = model.forward_inference(&[&a, &b]);
    }

    #[test]
    fn param_count_is_consistent() {
        let model = EventHit::new(tiny_config(), 5);
        // LSTM: 4*6*(4 + 6 + 1) = 264; shared: 5*6 + 5 = 35;
        // heads: 2 * (11 * 9 + 11) = 220.
        assert_eq!(model.param_count(), 264 + 35 + 220);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn forward_rejects_empty_batch() {
        let mut model = EventHit::new(tiny_config(), 6);
        let _ = model.forward(&[]);
    }
}
