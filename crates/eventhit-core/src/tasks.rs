//! The sixteen prediction tasks of Table II.

use eventhit_video::synthetic::{self, DatasetProfile};

/// Which synthetic dataset a task draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// VIRAT surveillance events (E1–E6).
    Virat,
    /// THUMOS sports actions (E7–E9).
    Thumos,
    /// Breakfast cooking action units (E10–E12).
    Breakfast,
}

impl DatasetKind {
    /// The full dataset profile.
    pub fn profile(self) -> DatasetProfile {
        match self {
            DatasetKind::Virat => synthetic::virat(),
            DatasetKind::Thumos => synthetic::thumos(),
            DatasetKind::Breakfast => synthetic::breakfast(),
        }
    }
}

/// One prediction task: a dataset and the subset of events of interest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Task {
    /// Task identifier, `"TA1"` … `"TA16"`.
    pub id: &'static str,
    /// Source dataset.
    pub dataset: DatasetKind,
    /// Paper ids of the events of interest (`"E1"` …).
    pub events: Vec<&'static str>,
}

impl Task {
    /// The dataset profile restricted to this task's events, in task order.
    pub fn profile(&self) -> DatasetProfile {
        let full = self.dataset.profile();
        let indices: Vec<usize> = self
            .events
            .iter()
            .map(|e| {
                full.class_index(e)
                    .unwrap_or_else(|| panic!("event {e} not in dataset {:?}", self.dataset))
            })
            .collect();
        full.select_classes(&indices)
    }

    /// Number of events of interest.
    pub fn num_events(&self) -> usize {
        self.events.len()
    }
}

/// All tasks of Table II, in order.
pub fn all_tasks() -> Vec<Task> {
    use DatasetKind::*;
    vec![
        Task {
            id: "TA1",
            dataset: Virat,
            events: vec!["E1"],
        },
        Task {
            id: "TA2",
            dataset: Virat,
            events: vec!["E2"],
        },
        Task {
            id: "TA3",
            dataset: Virat,
            events: vec!["E3"],
        },
        Task {
            id: "TA4",
            dataset: Virat,
            events: vec!["E4"],
        },
        Task {
            id: "TA5",
            dataset: Virat,
            events: vec!["E5"],
        },
        Task {
            id: "TA6",
            dataset: Virat,
            events: vec!["E6"],
        },
        Task {
            id: "TA7",
            dataset: Virat,
            events: vec!["E1", "E5"],
        },
        Task {
            id: "TA8",
            dataset: Virat,
            events: vec!["E5", "E6"],
        },
        Task {
            id: "TA9",
            dataset: Virat,
            events: vec!["E1", "E5", "E6"],
        },
        Task {
            id: "TA10",
            dataset: Thumos,
            events: vec!["E7"],
        },
        Task {
            id: "TA11",
            dataset: Thumos,
            events: vec!["E8"],
        },
        Task {
            id: "TA12",
            dataset: Thumos,
            events: vec!["E9"],
        },
        Task {
            id: "TA13",
            dataset: Breakfast,
            events: vec!["E10"],
        },
        Task {
            id: "TA14",
            dataset: Breakfast,
            events: vec!["E11"],
        },
        Task {
            id: "TA15",
            dataset: Breakfast,
            events: vec!["E11", "E12"],
        },
        Task {
            id: "TA16",
            dataset: Breakfast,
            events: vec!["E10", "E12"],
        },
    ]
}

/// Looks up a task by id (case-insensitive).
pub fn task(id: &str) -> Option<Task> {
    all_tasks()
        .into_iter()
        .find(|t| t.id.eq_ignore_ascii_case(id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_tasks() {
        let tasks = all_tasks();
        assert_eq!(tasks.len(), 16);
        assert_eq!(tasks[0].id, "TA1");
        assert_eq!(tasks[15].id, "TA16");
    }

    #[test]
    fn table2_event_sets() {
        assert_eq!(task("TA7").unwrap().events, vec!["E1", "E5"]);
        assert_eq!(task("TA8").unwrap().events, vec!["E5", "E6"]);
        assert_eq!(task("TA9").unwrap().events, vec!["E1", "E5", "E6"]);
        assert_eq!(task("TA15").unwrap().events, vec!["E11", "E12"]);
        assert_eq!(task("TA16").unwrap().events, vec!["E10", "E12"]);
    }

    #[test]
    fn datasets_match_events() {
        for t in all_tasks() {
            let full = t.dataset.profile();
            for e in &t.events {
                assert!(full.class_index(e).is_some(), "{}: {e}", t.id);
            }
        }
    }

    #[test]
    fn profile_selects_task_events_in_order() {
        let p = task("TA9").unwrap().profile();
        let ids: Vec<&str> = p.classes.iter().map(|c| c.paper_id.as_str()).collect();
        assert_eq!(ids, vec!["E1", "E5", "E6"]);
        assert_eq!(p.collection_window, 25);
        assert_eq!(p.horizon, 500);
    }

    #[test]
    fn lookup_is_case_insensitive_and_total() {
        assert!(task("ta10").is_some());
        assert!(task("TA17").is_none());
    }
}
