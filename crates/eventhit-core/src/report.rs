//! Result analysis utilities: REC–SPL operating curves, Pareto-front
//! extraction, dominance checks — the machinery behind statements like
//! "the closer the curve to the upper-left corner, the better" (§VI.D) —
//! plus the resilience summary of a faulted deployment run.

use crate::metrics::{EvalOutcome, MissAttribution};
use crate::resilient::ResilienceStats;

/// The run dashboard of the telemetry layer, re-exported where the other
/// run summaries live: counters, gauges, histogram quantiles, and top
/// spans by self-time, with JSONL export and an FNV-1a fingerprint.
pub use eventhit_telemetry::TelemetrySnapshot;

/// One operating point on the REC–SPL plane (recall up, spillage right).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// End-to-end recall.
    pub rec: f64,
    /// Spillage.
    pub spl: f64,
}

impl From<&EvalOutcome> for OperatingPoint {
    fn from(o: &EvalOutcome) -> Self {
        OperatingPoint {
            rec: o.rec,
            spl: o.spl,
        }
    }
}

impl OperatingPoint {
    /// True iff `self` dominates `other`: at least as good on both axes
    /// and strictly better on one (higher REC, lower SPL).
    pub fn dominates(&self, other: &OperatingPoint) -> bool {
        self.rec >= other.rec
            && self.spl <= other.spl
            && (self.rec > other.rec || self.spl < other.spl)
    }
}

/// A named operating curve (one algorithm's sweep).
#[derive(Debug, Clone, PartialEq)]
pub struct Curve {
    /// Algorithm name (e.g. `"EHCR"`).
    pub name: String,
    /// Swept points, in sweep order.
    pub points: Vec<OperatingPoint>,
}

impl Curve {
    /// Builds a curve from outcomes.
    pub fn from_outcomes(name: &str, outcomes: &[EvalOutcome]) -> Self {
        Curve {
            name: name.to_string(),
            points: outcomes.iter().map(OperatingPoint::from).collect(),
        }
    }

    /// The Pareto front of the curve: points not dominated by any other
    /// point of the curve, sorted by ascending SPL.
    pub fn pareto_front(&self) -> Vec<OperatingPoint> {
        pareto_front(&self.points)
    }

    /// Smallest SPL among points with `rec >= target`, or `None`.
    pub fn spl_at_recall(&self, target: f64) -> Option<f64> {
        self.points
            .iter()
            .filter(|p| p.rec >= target)
            .map(|p| p.spl)
            .min_by(f64::total_cmp)
    }

    /// Highest recall the curve reaches.
    pub fn max_recall(&self) -> f64 {
        self.points.iter().map(|p| p.rec).fold(0.0, f64::max)
    }
}

/// Extracts the Pareto-optimal subset (max REC, min SPL), sorted by
/// ascending SPL.
pub fn pareto_front(points: &[OperatingPoint]) -> Vec<OperatingPoint> {
    let mut front: Vec<OperatingPoint> = points
        .iter()
        .filter(|p| !points.iter().any(|q| q.dominates(p)))
        .copied()
        .collect();
    front.sort_by(|a, b| a.spl.total_cmp(&b.spl).then(a.rec.total_cmp(&b.rec)));
    front.dedup();
    front
}

/// Compares two curves across recall targets: returns the fraction of
/// targets (among those both curves reach) where `a` needs no more
/// spillage than `b`. A value near 1.0 means `a` dominates the trade-off,
/// the paper's criterion for "closer to the upper-left corner".
pub fn dominance_fraction(a: &Curve, b: &Curve, targets: &[f64]) -> Option<f64> {
    let mut comparable = 0usize;
    let mut a_wins = 0usize;
    for &t in targets {
        match (a.spl_at_recall(t), b.spl_at_recall(t)) {
            (Some(sa), Some(sb)) => {
                comparable += 1;
                if sa <= sb {
                    a_wins += 1;
                }
            }
            _ => continue,
        }
    }
    if comparable == 0 {
        None
    } else {
        Some(a_wins as f64 / comparable as f64)
    }
}

/// Renders curves as a compact markdown table (one row per point).
pub fn to_markdown(curves: &[Curve]) -> String {
    let mut out = String::from("| algorithm | REC | SPL |\n|---|---|---|\n");
    for c in curves {
        for p in &c.points {
            out.push_str(&format!("| {} | {:.4} | {:.4} |\n", c.name, p.rec, p.spl));
        }
    }
    out
}

/// The resilience summary of one faulted run: availability, retry
/// pressure, faulted latency percentiles, and the miss-attribution split.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceReport {
    /// Fraction of submissions delivered.
    pub availability: f64,
    /// Submissions issued.
    pub submissions: u64,
    /// Total retries across all submissions.
    pub retries: u64,
    /// Submissions rejected by the open circuit breaker.
    pub breaker_rejections: u64,
    /// Submissions that blew their deadline.
    pub deadline_blown: u64,
    /// Frames abandoned to the dead-letter queue.
    pub frames_dropped: u64,
    /// Faulted end-to-end latency percentiles `(p50, p95, p99)` over
    /// delivered submissions; `None` when nothing was delivered.
    pub latency: Option<(f64, f64, f64)>,
    /// Where every ground-truth instance ended up.
    pub attribution: MissAttribution,
}

impl ResilienceReport {
    /// Builds a report from a client's counters and a run's attribution.
    pub fn from_stats(stats: &ResilienceStats, attribution: MissAttribution) -> Self {
        ResilienceReport {
            availability: stats.availability(),
            submissions: stats.submissions,
            retries: stats.retries,
            breaker_rejections: stats.breaker_rejections,
            deadline_blown: stats.deadline_blown,
            frames_dropped: stats.frames_dropped,
            latency: stats.latency_percentiles(),
            attribution,
        }
    }

    /// Renders the report as a compact markdown table.
    pub fn to_markdown(&self) -> String {
        let (p50, p95, p99) = self.latency.unwrap_or((f64::NAN, f64::NAN, f64::NAN));
        let a = &self.attribution;
        format!(
            "| measure | value |\n|---|---|\n\
             | availability | {:.4} |\n\
             | submissions | {} |\n\
             | retries | {} |\n\
             | breaker rejections | {} |\n\
             | deadline blown | {} |\n\
             | frames dead-lettered | {} |\n\
             | latency p50/p95/p99 (s) | {:.3} / {:.3} / {:.3} |\n\
             | instances detected | {} |\n\
             | instances local-only | {} |\n\
             | missed: filtered by predictor | {} |\n\
             | missed: dropped by faults | {} |\n",
            self.availability,
            self.submissions,
            self.retries,
            self.breaker_rejections,
            self.deadline_blown,
            self.frames_dropped,
            p50,
            p95,
            p99,
            a.detected,
            a.local_unconfirmed,
            a.filtered_by_predictor,
            a.dropped_by_faults,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(rec: f64, spl: f64) -> OperatingPoint {
        OperatingPoint { rec, spl }
    }

    #[test]
    fn dominance_is_strict() {
        assert!(pt(0.9, 0.1).dominates(&pt(0.8, 0.2)));
        assert!(pt(0.9, 0.1).dominates(&pt(0.9, 0.2)));
        assert!(pt(0.9, 0.1).dominates(&pt(0.8, 0.1)));
        assert!(!pt(0.9, 0.1).dominates(&pt(0.9, 0.1))); // equal: no
        assert!(!pt(0.9, 0.3).dominates(&pt(0.8, 0.1))); // trade-off: no
    }

    #[test]
    fn pareto_front_filters_dominated() {
        let points = vec![
            pt(0.5, 0.1),
            pt(0.7, 0.2),
            pt(0.6, 0.3),
            pt(0.9, 0.5),
            pt(0.4, 0.4),
        ];
        let front = pareto_front(&points);
        assert_eq!(front, vec![pt(0.5, 0.1), pt(0.7, 0.2), pt(0.9, 0.5)]);
    }

    #[test]
    fn pareto_front_of_empty_is_empty() {
        assert!(pareto_front(&[]).is_empty());
    }

    #[test]
    fn spl_at_recall_picks_cheapest() {
        let c = Curve {
            name: "x".into(),
            points: vec![pt(0.9, 0.4), pt(0.95, 0.6), pt(0.9, 0.3)],
        };
        assert_eq!(c.spl_at_recall(0.9), Some(0.3));
        assert_eq!(c.spl_at_recall(0.95), Some(0.6));
        assert_eq!(c.spl_at_recall(0.99), None);
        assert_eq!(c.max_recall(), 0.95);
    }

    #[test]
    fn dominance_fraction_full_and_partial() {
        let strong = Curve {
            name: "a".into(),
            points: vec![pt(0.8, 0.1), pt(0.9, 0.2)],
        };
        let weak = Curve {
            name: "b".into(),
            points: vec![pt(0.8, 0.3), pt(0.9, 0.5)],
        };
        let targets = [0.8, 0.9];
        assert_eq!(dominance_fraction(&strong, &weak, &targets), Some(1.0));
        assert_eq!(dominance_fraction(&weak, &strong, &targets), Some(0.0));
        // No comparable targets.
        assert_eq!(dominance_fraction(&strong, &weak, &[0.99]), None);
    }

    #[test]
    fn resilience_report_renders_and_round_trips_stats() {
        let stats = ResilienceStats {
            submissions: 10,
            delivered: 8,
            degraded: 2,
            retries: 3,
            frames_dropped: 120,
            latencies: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0],
            ..ResilienceStats::default()
        };
        let attribution = MissAttribution {
            detected: 4,
            local_unconfirmed: 0,
            filtered_by_predictor: 1,
            dropped_by_faults: 2,
        };
        let r = ResilienceReport::from_stats(&stats, attribution);
        assert!((r.availability - 0.8).abs() < 1e-12);
        let (p50, p95, p99) = r.latency.unwrap();
        assert!(p50 <= p95 && p95 <= p99);
        let md = r.to_markdown();
        assert!(md.contains("| availability | 0.8000 |"));
        assert!(md.contains("| missed: dropped by faults | 2 |"));
        assert!(md.contains("| retries | 3 |"));
    }

    #[test]
    fn resilience_report_handles_zero_deliveries() {
        let stats = ResilienceStats {
            submissions: 4,
            degraded: 4,
            ..ResilienceStats::default()
        };
        let r = ResilienceReport::from_stats(&stats, MissAttribution::default());
        assert_eq!(r.availability, 0.0);
        assert!(r.latency.is_none());
        assert!(r.to_markdown().contains("NaN / NaN / NaN"));
    }

    #[test]
    fn markdown_rendering() {
        let c = Curve {
            name: "EHCR".into(),
            points: vec![pt(0.9, 0.2)],
        };
        let md = to_markdown(&[c]);
        assert!(md.contains("| EHCR | 0.9000 | 0.2000 |"));
        assert!(md.starts_with("| algorithm |"));
    }
}
