//! Model persistence: save and load trained EventHit weights.
//!
//! Training happens once (against CI-labelled data, §I); the deployed
//! marshaller then needs the weights without retraining. The format is a
//! small versioned binary layout — magic, version, config, then each
//! parameter tensor in the model's stable parameter order — written with
//! plain `std::io`, no serialization framework.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::error::{CoreError, CoreResult};
use crate::model::{EncoderKind, EventHit, EventHitConfig};

const MAGIC: &[u8; 4] = b"EVHT";
const VERSION: u32 = 1;

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f32(w: &mut impl Write, v: f32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_f32(r: &mut impl Read) -> io::Result<f32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(f32::from_le_bytes(buf))
}

fn bad(msg: &'static str) -> CoreError {
    CoreError::ModelFormat(msg)
}

/// Serializes a trained model.
pub fn save(model: &mut EventHit, w: &mut impl Write) -> CoreResult<()> {
    w.write_all(MAGIC)?;
    write_u32(w, VERSION)?;
    let cfg = model.config().clone();
    write_u32(w, cfg.input_dim as u32)?;
    write_u32(w, cfg.window as u32)?;
    write_u32(w, cfg.horizon as u32)?;
    write_u32(w, cfg.num_events as u32)?;
    write_u32(w, cfg.hidden_dim as u32)?;
    write_u32(w, cfg.shared_dim as u32)?;
    write_f32(w, cfg.dropout)?;
    write_u32(
        w,
        match model.encoder_kind() {
            EncoderKind::Lstm => 0,
            EncoderKind::Gru => 1,
        },
    )?;

    let params = model.params_mut();
    write_u32(w, params.len() as u32)?;
    for p in &params {
        write_u32(w, p.value.rows() as u32)?;
        write_u32(w, p.value.cols() as u32)?;
        for &x in p.value.as_slice() {
            write_f32(w, x)?;
        }
    }
    Ok(())
}

/// Deserializes a model saved with [`save`].
pub fn load(r: &mut impl Read) -> CoreResult<EventHit> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not an EventHit model file (bad magic)"));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(bad("unsupported model file version"));
    }
    let cfg = EventHitConfig {
        input_dim: read_u32(r)? as usize,
        window: read_u32(r)? as usize,
        horizon: read_u32(r)? as usize,
        num_events: read_u32(r)? as usize,
        hidden_dim: read_u32(r)? as usize,
        shared_dim: read_u32(r)? as usize,
        dropout: read_f32(r)?,
    };
    let kind = match read_u32(r)? {
        0 => EncoderKind::Lstm,
        1 => EncoderKind::Gru,
        _ => return Err(bad("unknown encoder kind")),
    };
    let mut model = EventHit::with_encoder(cfg, kind, 0);

    let n_params = read_u32(r)? as usize;
    let mut params = model.params_mut();
    if n_params != params.len() {
        return Err(bad("parameter count mismatch"));
    }
    for p in params.iter_mut() {
        let rows = read_u32(r)? as usize;
        let cols = read_u32(r)? as usize;
        if (rows, cols) != p.value.shape() {
            return Err(bad("parameter shape mismatch"));
        }
        for x in p.value.as_mut_slice() {
            *x = read_f32(r)?;
        }
    }
    drop(params);
    Ok(model)
}

/// Saves to a file path.
pub fn save_to_path(model: &mut EventHit, path: impl AsRef<Path>) -> CoreResult<()> {
    let mut w = BufWriter::new(File::create(path)?);
    save(model, &mut w)?;
    w.flush()?;
    Ok(())
}

/// Loads from a file path.
pub fn load_from_path(path: impl AsRef<Path>) -> CoreResult<EventHit> {
    let mut r = BufReader::new(File::open(path)?);
    load(&mut r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventhit_nn::matrix::Matrix;
    use eventhit_video::records::{EventLabel, Record};

    fn tiny_model(seed: u64) -> EventHit {
        EventHit::new(
            EventHitConfig {
                input_dim: 4,
                window: 3,
                horizon: 8,
                num_events: 2,
                hidden_dim: 6,
                shared_dim: 5,
                dropout: 0.1,
            },
            seed,
        )
    }

    fn probe_record() -> Record {
        Record {
            anchor: 0,
            covariates: Matrix::from_vec(3, 4, (0..12).map(|i| (i as f32) / 12.0 - 0.4).collect()),
            labels: vec![EventLabel::absent(); 2],
        }
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let mut model = tiny_model(1);
        let rec = probe_record();
        let before = model.forward_inference(&[&rec]);

        let mut buf = Vec::new();
        save(&mut model, &mut buf).unwrap();
        let restored = load(&mut buf.as_slice()).unwrap();
        let after = restored.forward_inference(&[&rec]);

        assert_eq!(before, after, "loaded model must predict identically");
        assert_eq!(restored.config(), model.config());
    }

    #[test]
    fn round_trip_via_file() {
        let mut model = tiny_model(2);
        let path = std::env::temp_dir().join("eventhit_model_io_test.evht");
        save_to_path(&mut model, &path).unwrap();
        let restored = load_from_path(&path).unwrap();
        let rec = probe_record();
        assert_eq!(
            model.forward_inference(&[&rec]),
            restored.forward_inference(&[&rec])
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = Vec::new();
        save(&mut tiny_model(3), &mut buf).unwrap();
        buf[0] = b'X';
        let err = load(&mut buf.as_slice()).err().expect("must fail");
        assert!(matches!(err, CoreError::ModelFormat(_)), "{err}");
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = Vec::new();
        save(&mut tiny_model(4), &mut buf).unwrap();
        buf[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(load(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_truncated_file() {
        let mut buf = Vec::new();
        save(&mut tiny_model(5), &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        let err = load(&mut buf.as_slice()).err().expect("must fail");
        assert!(matches!(err, CoreError::Io(_)), "{err}");
    }

    #[test]
    fn gru_round_trip_preserves_encoder_and_predictions() {
        let cfg = EventHitConfig {
            input_dim: 4,
            window: 3,
            horizon: 8,
            num_events: 1,
            hidden_dim: 6,
            shared_dim: 5,
            dropout: 0.0,
        };
        let mut model = EventHit::with_encoder(cfg, EncoderKind::Gru, 11);
        let rec = probe_record();
        let before = model.forward_inference(&[&rec]);
        let mut buf = Vec::new();
        save(&mut model, &mut buf).unwrap();
        let restored = load(&mut buf.as_slice()).unwrap();
        assert_eq!(restored.encoder_kind(), EncoderKind::Gru);
        assert_eq!(before, restored.forward_inference(&[&rec]));
    }

    #[test]
    fn different_models_serialize_differently() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        save(&mut tiny_model(6), &mut a).unwrap();
        save(&mut tiny_model(7), &mut b).unwrap();
        assert_ne!(a, b);
        assert_eq!(a.len(), b.len(), "same architecture, same file size");
    }
}
