//! Model persistence: save and load trained EventHit weights.
//!
//! Training happens once (against CI-labelled data, §I); the deployed
//! marshaller then needs the weights without retraining. The format is a
//! small versioned binary layout written with plain `std::io`, no
//! serialization framework:
//!
//! ```text
//! +-------+-------------+------------------+------------+---------+
//! | magic | version u32 | payload_len u64  | crc32 u32  | payload |
//! +-------+-------------+------------------+------------+---------+
//! ```
//!
//! The payload holds the config fields, the encoder kind, and each
//! parameter tensor in the model's stable parameter order. Version 2
//! added the `payload_len` + CRC-32 header so a truncated or corrupted
//! weights file fails loudly with a typed [`CoreError`] — under version 1
//! a short read could end *between* fields and mis-deserialize silently.
//! Version-1 files (no length/checksum header) still load.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use eventhit_telemetry::{crc32, fnv1a};

use crate::error::{CoreError, CoreResult};
use crate::model::{EncoderKind, EventHit, EventHitConfig};

const MAGIC: &[u8; 4] = b"EVHT";
const VERSION: u32 = 2;
/// Most permissive payload the loader will allocate for — far above any
/// real EventHit (hidden dims are two digits), it only guards against a
/// corrupted length field requesting gigabytes.
const MAX_PAYLOAD_BYTES: u64 = 1 << 31;

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f32(w: &mut impl Write, v: f32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_f32(r: &mut impl Read) -> io::Result<f32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(f32::from_le_bytes(buf))
}

fn bad(msg: &'static str) -> CoreError {
    CoreError::ModelFormat(msg)
}

/// Serializes the version-agnostic payload: config, encoder kind, params.
fn write_payload(model: &mut EventHit, w: &mut impl Write) -> CoreResult<()> {
    let cfg = model.config().clone();
    write_u32(w, cfg.input_dim as u32)?;
    write_u32(w, cfg.window as u32)?;
    write_u32(w, cfg.horizon as u32)?;
    write_u32(w, cfg.num_events as u32)?;
    write_u32(w, cfg.hidden_dim as u32)?;
    write_u32(w, cfg.shared_dim as u32)?;
    write_f32(w, cfg.dropout)?;
    write_u32(
        w,
        match model.encoder_kind() {
            EncoderKind::Lstm => 0,
            EncoderKind::Gru => 1,
        },
    )?;

    let params = model.params_mut();
    write_u32(w, params.len() as u32)?;
    for p in &params {
        write_u32(w, p.value.rows() as u32)?;
        write_u32(w, p.value.cols() as u32)?;
        for &x in p.value.as_slice() {
            write_f32(w, x)?;
        }
    }
    Ok(())
}

/// Deserializes the payload written by [`write_payload`].
fn read_payload(r: &mut impl Read) -> CoreResult<EventHit> {
    let cfg = EventHitConfig {
        input_dim: read_u32(r)? as usize,
        window: read_u32(r)? as usize,
        horizon: read_u32(r)? as usize,
        num_events: read_u32(r)? as usize,
        hidden_dim: read_u32(r)? as usize,
        shared_dim: read_u32(r)? as usize,
        dropout: read_f32(r)?,
    };
    let kind = match read_u32(r)? {
        0 => EncoderKind::Lstm,
        1 => EncoderKind::Gru,
        _ => return Err(bad("unknown encoder kind")),
    };
    let mut model = EventHit::with_encoder(cfg, kind, 0);

    let n_params = read_u32(r)? as usize;
    let mut params = model.params_mut();
    if n_params != params.len() {
        return Err(bad("parameter count mismatch"));
    }
    for p in params.iter_mut() {
        let rows = read_u32(r)? as usize;
        let cols = read_u32(r)? as usize;
        if (rows, cols) != p.value.shape() {
            return Err(bad("parameter shape mismatch"));
        }
        for x in p.value.as_mut_slice() {
            *x = read_f32(r)?;
        }
    }
    drop(params);
    Ok(model)
}

/// Serializes a trained model (version 2: length + CRC-32 header).
pub fn save(model: &mut EventHit, w: &mut impl Write) -> CoreResult<()> {
    let mut payload = Vec::new();
    write_payload(model, &mut payload)?;
    w.write_all(MAGIC)?;
    write_u32(w, VERSION)?;
    w.write_all(&(payload.len() as u64).to_le_bytes())?;
    write_u32(w, crc32(&payload))?;
    w.write_all(&payload)?;
    Ok(())
}

/// Deserializes a model saved with [`save`].
///
/// Accepts version 2 (checksummed) and legacy version 1 (bare payload).
/// A version-2 file that is shorter than its declared payload fails with
/// [`CoreError::ModelFormat`]; one whose payload bytes do not hash to the
/// recorded CRC-32 fails with [`CoreError::ChecksumMismatch`] — either
/// way, corrupted weights never deserialize silently.
pub fn load(r: &mut impl Read) -> CoreResult<EventHit> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not an EventHit model file (bad magic)"));
    }
    match read_u32(r)? {
        1 => read_payload(r),
        2 => {
            let declared = read_u64(r)?;
            if declared > MAX_PAYLOAD_BYTES {
                return Err(bad("declared payload length is implausibly large"));
            }
            let expected = read_u32(r)?;
            let mut payload = vec![0u8; declared as usize];
            r.read_exact(&mut payload)
                .map_err(|_| bad("model payload truncated (shorter than its header declares)"))?;
            let got = crc32(&payload);
            if got != expected {
                return Err(CoreError::ChecksumMismatch { expected, got });
            }
            read_payload(&mut payload.as_slice())
        }
        _ => Err(bad("unsupported model file version")),
    }
}

/// Saves to a file path.
pub fn save_to_path(model: &mut EventHit, path: impl AsRef<Path>) -> CoreResult<()> {
    let mut w = BufWriter::new(File::create(path)?);
    save(model, &mut w)?;
    w.flush()?;
    Ok(())
}

/// Loads from a file path.
pub fn load_from_path(path: impl AsRef<Path>) -> CoreResult<EventHit> {
    let mut r = BufReader::new(File::open(path)?);
    load(&mut r)
}

/// FNV-1a fingerprint of the model's serialized bytes: two models
/// fingerprint equal iff they serialize bit-identically (same config,
/// encoder, and every weight bit). This is the identity the durable
/// serving layer logs with `ModelReloaded` events and snapshot headers.
///
/// Takes `&mut` because parameter enumeration does (see
/// `EventHit::params_mut`); the model is not modified.
pub fn fingerprint(model: &mut EventHit) -> u64 {
    let mut bytes = Vec::new();
    save(model, &mut bytes).expect("in-memory serialization cannot fail");
    fnv1a(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventhit_nn::matrix::Matrix;
    use eventhit_video::records::{EventLabel, Record};

    fn tiny_model(seed: u64) -> EventHit {
        EventHit::new(
            EventHitConfig {
                input_dim: 4,
                window: 3,
                horizon: 8,
                num_events: 2,
                hidden_dim: 6,
                shared_dim: 5,
                dropout: 0.1,
            },
            seed,
        )
    }

    fn probe_record() -> Record {
        Record {
            anchor: 0,
            covariates: Matrix::from_vec(3, 4, (0..12).map(|i| (i as f32) / 12.0 - 0.4).collect()),
            labels: vec![EventLabel::absent(); 2],
        }
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let mut model = tiny_model(1);
        let rec = probe_record();
        let before = model.forward_inference(&[&rec]);

        let mut buf = Vec::new();
        save(&mut model, &mut buf).unwrap();
        let restored = load(&mut buf.as_slice()).unwrap();
        let after = restored.forward_inference(&[&rec]);

        assert_eq!(before, after, "loaded model must predict identically");
        assert_eq!(restored.config(), model.config());
    }

    #[test]
    fn round_trip_via_file() {
        let mut model = tiny_model(2);
        let path = std::env::temp_dir().join("eventhit_model_io_test.evht");
        save_to_path(&mut model, &path).unwrap();
        let restored = load_from_path(&path).unwrap();
        let rec = probe_record();
        assert_eq!(
            model.forward_inference(&[&rec]),
            restored.forward_inference(&[&rec])
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = Vec::new();
        save(&mut tiny_model(3), &mut buf).unwrap();
        buf[0] = b'X';
        let err = load(&mut buf.as_slice()).err().expect("must fail");
        assert!(matches!(err, CoreError::ModelFormat(_)), "{err}");
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = Vec::new();
        save(&mut tiny_model(4), &mut buf).unwrap();
        buf[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(load(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncation_is_a_typed_format_error() {
        // Any truncation inside the payload must surface as a typed
        // ModelFormat error — never as silently mis-deserialized weights,
        // and never as a bare Io error that hides what happened.
        let mut buf = Vec::new();
        save(&mut tiny_model(5), &mut buf).unwrap();
        for cut in [buf.len() / 2, buf.len() - 1, 17] {
            let mut short = buf.clone();
            short.truncate(cut);
            let err = load(&mut short.as_slice()).err().expect("must fail");
            assert!(
                matches!(err, CoreError::ModelFormat(_) | CoreError::Io(_)),
                "cut at {cut}: {err}"
            );
        }
        // A cut inside the payload proper (past the 20-byte header) is
        // always the typed ModelFormat truncation error.
        let mut short = buf.clone();
        short.truncate(buf.len() - 1);
        let err = load(&mut short.as_slice()).err().expect("must fail");
        assert!(matches!(err, CoreError::ModelFormat(_)), "{err}");
    }

    #[test]
    fn corruption_is_a_checksum_mismatch() {
        let mut buf = Vec::new();
        save(&mut tiny_model(6), &mut buf).unwrap();
        // Flip one bit deep inside a weight tensor.
        let at = buf.len() - 9;
        buf[at] ^= 0x40;
        let err = load(&mut buf.as_slice()).err().expect("must fail");
        assert!(matches!(err, CoreError::ChecksumMismatch { .. }), "{err}");
    }

    #[test]
    fn legacy_version_1_files_still_load() {
        // A v1 file is magic + version + bare payload (no length, no CRC).
        let mut model = tiny_model(7);
        let mut payload = Vec::new();
        write_payload(&mut model, &mut payload).unwrap();
        let mut v1 = Vec::new();
        v1.extend_from_slice(MAGIC);
        v1.extend_from_slice(&1u32.to_le_bytes());
        v1.extend_from_slice(&payload);
        let restored = load(&mut v1.as_slice()).unwrap();
        let rec = probe_record();
        assert_eq!(
            model.forward_inference(&[&rec]),
            restored.forward_inference(&[&rec])
        );
    }

    #[test]
    fn gru_round_trip_preserves_encoder_and_predictions() {
        let cfg = EventHitConfig {
            input_dim: 4,
            window: 3,
            horizon: 8,
            num_events: 1,
            hidden_dim: 6,
            shared_dim: 5,
            dropout: 0.0,
        };
        let mut model = EventHit::with_encoder(cfg, EncoderKind::Gru, 11);
        let rec = probe_record();
        let before = model.forward_inference(&[&rec]);
        let mut buf = Vec::new();
        save(&mut model, &mut buf).unwrap();
        let restored = load(&mut buf.as_slice()).unwrap();
        assert_eq!(restored.encoder_kind(), EncoderKind::Gru);
        assert_eq!(before, restored.forward_inference(&[&rec]));
    }

    #[test]
    fn different_models_serialize_differently() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        save(&mut tiny_model(8), &mut a).unwrap();
        save(&mut tiny_model(9), &mut b).unwrap();
        assert_ne!(a, b);
        assert_eq!(a.len(), b.len(), "same architecture, same file size");
    }

    #[test]
    fn fingerprint_tracks_weight_identity() {
        let fp_a = fingerprint(&mut tiny_model(10));
        let fp_a2 = fingerprint(&mut tiny_model(10));
        let fp_b = fingerprint(&mut tiny_model(11));
        assert_eq!(fp_a, fp_a2, "same seed, same weights, same fingerprint");
        assert_ne!(fp_a, fp_b, "different weights must fingerprint apart");
    }
}
