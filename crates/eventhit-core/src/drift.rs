//! Drift detection and adaptation — the paper's §VIII future-work item
//! ("detect and adapt to changes in the occurrence distribution over
//! time").
//!
//! Conformal p-values offer a principled handle: under exchangeability
//! (the stationary regime the paper assumes) the p-values of *positive*
//! test examples are (super-)uniform on `[0, 1]`. When the stream drifts —
//! precursors change shape, event dynamics shift — the model's scores
//! degrade, positives' non-conformity rises, and their p-values pile up
//! near 0.
//!
//! [`DriftDetector`] monitors a power martingale over incoming p-values
//! (Vovk et al.: `M_n = Π ε p_i^{ε-1}`): under exchangeability `M_n` is a
//! non-negative martingale with mean 1, so by Ville's inequality
//! `P(sup M_n ≥ λ) ≤ 1/λ` — an alarm at `M_n ≥ 1/δ` has false-alarm
//! probability at most `δ` over the whole run. [`Recalibrator`] keeps a
//! sliding buffer of recent labelled records and refits the conformal
//! state when the detector fires.

use std::collections::VecDeque;

use crate::infer::ScoredRecord;
use crate::pipeline::ConformalState;

/// State of the drift monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftStatus {
    /// Martingale within bounds: no evidence against exchangeability.
    Stationary,
    /// Martingale crossed the alarm threshold: the p-value stream is no
    /// longer exchangeable — recalibrate or retrain.
    Drift,
}

/// A power-martingale drift detector over conformal p-values.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    epsilon: f64,
    log_martingale: f64,
    log_threshold: f64,
    max_log: f64,
    observations: u64,
}

impl DriftDetector {
    /// Creates a detector with betting exponent `epsilon` in (0, 1)
    /// (0.1–0.3 is customary) and false-alarm bound `delta` in (0, 1):
    /// the probability of ever alarming on an exchangeable stream is ≤
    /// `delta`.
    pub fn new(epsilon: f64, delta: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&epsilon) && epsilon > 0.0,
            "epsilon in (0,1)"
        );
        assert!((0.0..1.0).contains(&delta) && delta > 0.0, "delta in (0,1)");
        DriftDetector {
            epsilon,
            log_martingale: 0.0,
            log_threshold: (1.0 / delta).ln(),
            max_log: 0.0,
            observations: 0,
        }
    }

    /// Feeds one conformal p-value; returns the current status.
    pub fn observe(&mut self, p: f64) -> DriftStatus {
        let p = p.clamp(1e-9, 1.0);
        // Betting function: ε p^{ε-1}; integrates to 1 over [0,1].
        self.log_martingale += self.epsilon.ln() + (self.epsilon - 1.0) * p.ln();
        self.observations += 1;
        if self.log_martingale > self.max_log {
            self.max_log = self.log_martingale;
        }
        self.status()
    }

    /// Current status without feeding a new value.
    pub fn status(&self) -> DriftStatus {
        if self.max_log >= self.log_threshold {
            DriftStatus::Drift
        } else {
            DriftStatus::Stationary
        }
    }

    /// Current martingale value (may overflow to `inf` after long drifts;
    /// the log is tracked internally).
    pub fn martingale(&self) -> f64 {
        self.log_martingale.exp()
    }

    /// Natural log of the current martingale value.
    pub fn log_martingale(&self) -> f64 {
        self.log_martingale
    }

    /// Number of p-values observed.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Resets the martingale (after acting on an alarm).
    pub fn reset(&mut self) {
        self.log_martingale = 0.0;
        self.max_log = 0.0;
        self.observations = 0;
    }
}

/// Sliding-window recalibration: buffers recent labelled records and refits
/// the conformal state on demand (e.g. when [`DriftDetector`] fires).
pub struct Recalibrator {
    buffer: VecDeque<ScoredRecord>,
    capacity: usize,
    num_events: usize,
    tau2: f32,
    horizon: usize,
}

impl Recalibrator {
    /// Creates a recalibrator holding up to `capacity` recent records.
    pub fn new(capacity: usize, num_events: usize, tau2: f32, horizon: usize) -> Self {
        assert!(capacity > 0);
        Recalibrator {
            buffer: VecDeque::with_capacity(capacity),
            capacity,
            num_events,
            tau2,
            horizon,
        }
    }

    /// Adds a labelled record (oldest evicted beyond capacity).
    pub fn push(&mut self, record: ScoredRecord) {
        if self.buffer.len() == self.capacity {
            self.buffer.pop_front();
        }
        self.buffer.push_back(record);
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// Refits the conformal state from the buffered window.
    pub fn refit(&self) -> ConformalState {
        let records: Vec<ScoredRecord> = self.buffer.iter().cloned().collect();
        ConformalState::fit(&records, self.num_events, self.tau2, self.horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::EventScores;
    use eventhit_rng::rngs::StdRng;
    use eventhit_rng::{Rng, SeedableRng};
    use eventhit_video::records::EventLabel;

    #[test]
    fn stationary_uniform_p_values_rarely_alarm() {
        // Over several independent uniform streams, the delta = 0.01 bound
        // means alarms should be (essentially) absent.
        let mut rng = StdRng::seed_from_u64(1);
        let mut alarms = 0;
        for _ in 0..50 {
            let mut det = DriftDetector::new(0.2, 0.01);
            for _ in 0..2_000 {
                if det.observe(rng.random::<f64>()) == DriftStatus::Drift {
                    alarms += 1;
                    break;
                }
            }
        }
        assert!(alarms <= 2, "false alarms: {alarms}/50 (bound: ~1%)");
    }

    #[test]
    fn drifted_small_p_values_alarm_quickly() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut det = DriftDetector::new(0.2, 0.01);
        let mut steps = 0;
        // p-values concentrated near zero: model no longer conforms.
        while det.observe(rng.random::<f64>() * 0.05) == DriftStatus::Stationary {
            steps += 1;
            assert!(steps < 200, "detector failed to alarm under heavy drift");
        }
        assert_eq!(det.status(), DriftStatus::Drift);
    }

    #[test]
    fn alarm_latches_until_reset() {
        let mut det = DriftDetector::new(0.2, 0.1);
        for _ in 0..100 {
            det.observe(0.001);
        }
        assert_eq!(det.status(), DriftStatus::Drift);
        // Even after good p-values, the max is latched.
        for _ in 0..100 {
            det.observe(0.9);
        }
        assert_eq!(det.status(), DriftStatus::Drift);
        det.reset();
        assert_eq!(det.status(), DriftStatus::Stationary);
        assert_eq!(det.observations(), 0);
    }

    #[test]
    fn log_martingale_drifts_down_under_uniform() {
        // Under exchangeability the martingale has mean 1 but (as for any
        // positive martingale with variance) its LOG drifts downward:
        // E[ln(ε p^{ε-1})] = ln ε + (ε-1) E[ln p] = ln ε + (1 - ε).
        // For ε = 0.3 that is ≈ -0.504 per observation.
        let mut rng = StdRng::seed_from_u64(3);
        let n = 40_000;
        let mut det = DriftDetector::new(0.3, f64::MIN_POSITIVE);
        for _ in 0..n {
            det.observe(rng.random::<f64>());
        }
        let per_obs = det.log_martingale() / n as f64;
        let expected = 0.3f64.ln() + 0.7;
        assert!(
            (per_obs - expected).abs() < 0.02,
            "per-observation log drift {per_obs} vs expected {expected}"
        );
    }

    #[test]
    #[should_panic(expected = "epsilon in (0,1)")]
    fn rejects_bad_epsilon() {
        let _ = DriftDetector::new(1.0, 0.1);
    }

    fn record(b: f64, present: bool) -> ScoredRecord {
        ScoredRecord {
            anchor: 0,
            scores: vec![EventScores {
                b,
                theta: vec![0.9; 10],
            }],
            labels: vec![if present {
                EventLabel {
                    present: true,
                    start: 1,
                    end: 5,
                    censored: false,
                }
            } else {
                EventLabel::absent()
            }],
        }
    }

    #[test]
    fn recalibrator_evicts_and_refits() {
        let mut rc = Recalibrator::new(3, 1, 0.5, 10);
        assert!(rc.is_empty());
        for b in [0.9, 0.8, 0.7, 0.6] {
            rc.push(record(b, true));
        }
        assert_eq!(rc.len(), 3); // 0.9 evicted
        let state = rc.refit();
        assert_eq!(state.calibration_sizes(), vec![3]);
    }

    #[test]
    fn refit_adapts_to_new_score_regime() {
        // Old regime: positives score ~0.9. After drift they score ~0.4.
        // A refit calibration admits 0.4-scoring positives at moderate c.
        let mut rc = Recalibrator::new(50, 1, 0.5, 10);
        for _ in 0..50 {
            rc.push(record(0.4, true));
        }
        let state = rc.refit();
        let drifted = record(0.4, true);
        let p = state.predict(&drifted, &crate::pipeline::Strategy::Ehc { c: 0.6 });
        assert!(p[0].present, "refit calibration must accept the new regime");
    }
}
