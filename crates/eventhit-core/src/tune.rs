//! Hyper-parameter search for the loss weights and optimizer settings.
//!
//! The paper tunes `β_k` and `γ_k` "by grid search" (§III, refs 23–24) and
//! selects `M` experimentally (§VI.F). This module provides both classic
//! grid search and Bergstra–Bengio random search over a candidate space,
//! scoring each candidate by training on a training split and evaluating
//! the plain EHO decision on a held-out validation split (never the test
//! split).

use eventhit_parallel::Pool;
use eventhit_rng::rngs::StdRng;
use eventhit_rng::{mix64, Rng, SeedableRng};

use eventhit_video::records::Record;

use crate::infer::{eho_predict, score_records};
use crate::metrics::{evaluate, EvalOutcome};
use crate::model::{EventHit, EventHitConfig};
use crate::train::{train, TrainConfig};

/// One hyper-parameter candidate (uniform `β`/`γ` across events; per-event
/// weights can be tuned by composing searches per event).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Classification-loss weight `β`.
    pub beta: f32,
    /// Occurrence-loss weight `γ`.
    pub gamma: f32,
    /// Learning rate.
    pub lr: f32,
    /// Training epochs.
    pub epochs: usize,
}

/// The candidate space searched.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpace {
    /// Candidate `β` values.
    pub beta: Vec<f32>,
    /// Candidate `γ` values.
    pub gamma: Vec<f32>,
    /// Candidate learning rates.
    pub lr: Vec<f32>,
    /// Candidate epoch counts.
    pub epochs: Vec<usize>,
}

impl Default for SearchSpace {
    fn default() -> Self {
        SearchSpace {
            beta: vec![0.5, 1.0, 2.0],
            gamma: vec![0.5, 1.0, 2.0],
            lr: vec![1e-3, 3e-3],
            epochs: vec![8],
        }
    }
}

impl SearchSpace {
    /// Enumerates the full grid.
    pub fn grid(&self) -> Vec<Candidate> {
        let mut out = Vec::new();
        for &beta in &self.beta {
            for &gamma in &self.gamma {
                for &lr in &self.lr {
                    for &epochs in &self.epochs {
                        out.push(Candidate {
                            beta,
                            gamma,
                            lr,
                            epochs,
                        });
                    }
                }
            }
        }
        out
    }

    /// Samples `n` random candidates (with replacement) — random search
    /// often beats the grid at equal budget (Bergstra & Bengio, 2012).
    pub fn sample(&self, n: usize, seed: u64) -> Vec<Candidate> {
        let mut rng = StdRng::seed_from_u64(seed);
        let pick = |v: &Vec<f32>, rng: &mut StdRng| v[rng.random_range(0..v.len())];
        (0..n)
            .map(|_| Candidate {
                beta: pick(&self.beta, &mut rng),
                gamma: pick(&self.gamma, &mut rng),
                lr: pick(&self.lr, &mut rng),
                epochs: self.epochs[rng.random_range(0..self.epochs.len())],
            })
            .collect()
    }
}

/// What the search optimizes on the validation split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Maximize `REC − λ·SPL`.
    RecMinusSpl {
        /// Spillage penalty weight.
        lambda: f64,
    },
    /// Maximize REC outright (cost-insensitive).
    Rec,
}

impl Objective {
    /// Scores an outcome (higher is better).
    pub fn score(&self, o: &EvalOutcome) -> f64 {
        match *self {
            Objective::RecMinusSpl { lambda } => o.rec - lambda * o.spl,
            Objective::Rec => o.rec,
        }
    }
}

/// One evaluated candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialResult {
    /// The hyper-parameters tried.
    pub candidate: Candidate,
    /// Validation outcome under EHO (τ1 = τ2 = 0.5).
    pub outcome: EvalOutcome,
    /// Objective value (higher is better).
    pub score: f64,
}

/// Trains one candidate and evaluates EHO on the validation split.
pub fn evaluate_candidate(
    candidate: &Candidate,
    model_cfg: &EventHitConfig,
    train_records: &[Record],
    val_records: &[Record],
    seed: u64,
    objective: &Objective,
) -> TrialResult {
    let mut cfg = model_cfg.clone();
    cfg.num_events = train_records[0].labels.len();
    let mut model = EventHit::new(cfg, seed);
    let tc = TrainConfig {
        epochs: candidate.epochs,
        lr: candidate.lr,
        beta: vec![candidate.beta; model.config().num_events],
        gamma: vec![candidate.gamma; model.config().num_events],
        seed: seed.wrapping_add(1),
        ..Default::default()
    };
    train(&mut model, train_records, &tc);

    let scored = score_records(&model, val_records, 128);
    let preds: Vec<_> = scored
        .iter()
        .map(|r| {
            r.scores
                .iter()
                .map(|s| eho_predict(s, 0.5, 0.5))
                .collect::<Vec<_>>()
        })
        .collect();
    let outcome = evaluate(&preds, &scored, model.config().horizon as u32);
    TrialResult {
        candidate: *candidate,
        outcome,
        score: objective.score(&outcome),
    }
}

/// The model/training seed of grid cell `index` under master seed
/// `seed`: a SplitMix64 substream. Deriving the seed from the cell's
/// *position* (never from evaluation order or shared RNG state) is what
/// lets cells train in parallel and still reproduce the sequential
/// search bit for bit.
pub fn substream_seed(seed: u64, index: usize) -> u64 {
    mix64(seed ^ mix64(index as u64 + 1))
}

/// Runs a search over explicit candidates on the ambient
/// [`Pool::current`]; returns results sorted best first.
pub fn search(
    candidates: &[Candidate],
    model_cfg: &EventHitConfig,
    train_records: &[Record],
    val_records: &[Record],
    seed: u64,
    objective: Objective,
) -> Vec<TrialResult> {
    search_with(
        candidates,
        model_cfg,
        train_records,
        val_records,
        seed,
        objective,
        &Pool::current(),
    )
}

/// [`search`] on an explicit [`Pool`]: one task per candidate, each
/// training its model on its own [`substream_seed`]. The final ranking
/// sorts by score with a stable tiebreak on grid order, so it is
/// deterministic for any worker count.
pub fn search_with(
    candidates: &[Candidate],
    model_cfg: &EventHitConfig,
    train_records: &[Record],
    val_records: &[Record],
    seed: u64,
    objective: Objective,
    pool: &Pool,
) -> Vec<TrialResult> {
    assert!(!candidates.is_empty(), "no candidates to search");
    assert!(!train_records.is_empty() && !val_records.is_empty());
    let mut results: Vec<TrialResult> = pool.map_chunked(candidates.len(), 1, |i| {
        evaluate_candidate(
            &candidates[i],
            model_cfg,
            train_records,
            val_records,
            substream_seed(seed, i),
            &objective,
        )
    });
    results.sort_by(|a, b| b.score.total_cmp(&a.score));
    results
}

/// Splits records temporally into (train, validation) at `val_frac`.
pub fn holdout_split(records: &[Record], val_frac: f64) -> (Vec<Record>, Vec<Record>) {
    assert!((0.0..1.0).contains(&val_frac) && val_frac > 0.0);
    let n_val = ((records.len() as f64) * val_frac).ceil() as usize;
    let split = records.len().saturating_sub(n_val);
    (records[..split].to_vec(), records[split..].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventhit_nn::matrix::Matrix;
    use eventhit_video::records::EventLabel;

    fn learnable_records(n: usize, seed: u64) -> Vec<Record> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let positive = rng.random::<f32>() < 0.5;
                let fill = if positive { 0.9 } else { 0.1 };
                let noise: f32 = rng.random_range(-0.05..0.05);
                let label = if positive {
                    EventLabel {
                        present: true,
                        start: 3,
                        end: 5,
                        censored: false,
                    }
                } else {
                    EventLabel::absent()
                };
                Record {
                    anchor: 0,
                    covariates: Matrix::filled(4, 3, fill + noise),
                    labels: vec![label],
                }
            })
            .collect()
    }

    fn tiny_cfg() -> EventHitConfig {
        EventHitConfig {
            input_dim: 3,
            window: 4,
            horizon: 8,
            num_events: 1,
            hidden_dim: 8,
            shared_dim: 6,
            dropout: 0.0,
        }
    }

    #[test]
    fn grid_enumerates_product() {
        let space = SearchSpace {
            beta: vec![1.0, 2.0],
            gamma: vec![1.0],
            lr: vec![0.01, 0.003],
            epochs: vec![5, 10],
        };
        assert_eq!(space.grid().len(), 8);
    }

    #[test]
    fn random_sample_is_deterministic_and_in_space() {
        let space = SearchSpace::default();
        let a = space.sample(10, 42);
        let b = space.sample(10, 42);
        assert_eq!(a, b);
        for c in &a {
            assert!(space.beta.contains(&c.beta));
            assert!(space.gamma.contains(&c.gamma));
            assert!(space.lr.contains(&c.lr));
            assert!(space.epochs.contains(&c.epochs));
        }
    }

    #[test]
    fn holdout_split_is_temporal() {
        let records = learnable_records(10, 0);
        let (train, val) = holdout_split(&records, 0.3);
        assert_eq!(train.len(), 7);
        assert_eq!(val.len(), 3);
    }

    #[test]
    fn objective_scoring() {
        let o = EvalOutcome {
            rec: 0.8,
            spl: 0.2,
            rec_c: 0.8,
            rec_r: 0.8,
            frames_relayed: 0,
            true_frames: 0,
            positives: 1,
            records: 1,
        };
        assert!((Objective::Rec.score(&o) - 0.8).abs() < 1e-12);
        assert!((Objective::RecMinusSpl { lambda: 1.0 }.score(&o) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn search_orders_results_and_finds_learnable_config() {
        let records = learnable_records(200, 1);
        let (train, val) = holdout_split(&records, 0.25);
        let candidates = vec![
            // A degenerate candidate that cannot learn (lr far too small,
            // 1 epoch) vs a reasonable one.
            Candidate {
                beta: 1.0,
                gamma: 1.0,
                lr: 1e-7,
                epochs: 1,
            },
            Candidate {
                beta: 1.0,
                gamma: 1.0,
                lr: 0.01,
                epochs: 25,
            },
        ];
        let results = search(
            &candidates,
            &tiny_cfg(),
            &train,
            &val,
            9,
            Objective::RecMinusSpl { lambda: 1.0 },
        );
        assert_eq!(results.len(), 2);
        assert!(results[0].score >= results[1].score);
        assert_eq!(
            results[0].candidate.lr, 0.01,
            "trained candidate should win"
        );
        assert!(results[0].outcome.rec > 0.5);
    }
}
