//! Capacity planning: pick a conformal operating point that meets a recall
//! target *and* keeps the CI queue stable.
//!
//! The latency experiment shows that an operating point chosen purely for
//! recall can saturate the CI (offered load ≥ service rate) and fall
//! behind the live stream without bound. Stability requires the long-run
//! relay rate (frames relayed per stream frame, i.e. the duty cycle) to
//! stay below the service-to-capture rate ratio:
//!
//! ```text
//! duty_cycle * stream_fps  <  ci_fps        (ρ < 1)
//! ```
//!
//! [`plan`] sweeps the EHCR grid and returns the best stable point for a
//! recall target, plus diagnostics for every candidate.

use crate::ci_queue::QueueConfig;
use crate::experiment::{grids, TaskRun};
use crate::metrics::EvalOutcome;
use crate::pipeline::Strategy;

/// Diagnostics of one candidate operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidatePlan {
    /// The strategy evaluated.
    pub strategy: Strategy,
    /// Its test-split outcome.
    pub outcome: EvalOutcome,
    /// Relay duty cycle: relayed frames per covered stream frame.
    pub duty_cycle: f64,
    /// Offered load ρ = duty_cycle × stream_fps / ci_fps.
    pub rho: f64,
}

impl CandidatePlan {
    /// True when the CI queue is stable under this point (with the given
    /// safety headroom, e.g. 0.2 for ρ ≤ 0.8).
    pub fn is_stable(&self, headroom: f64) -> bool {
        self.rho <= 1.0 - headroom
    }
}

/// The planner's verdict.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// A stable point meeting the target, with all evaluated candidates.
    Feasible {
        /// The chosen point (min ρ among those meeting the target).
        chosen: CandidatePlan,
        /// Every candidate, for reporting.
        candidates: Vec<CandidatePlan>,
    },
    /// No stable point meets the target; the best recall achievable under
    /// the stability constraint is reported.
    Infeasible {
        /// The stable point with the highest recall, if any is stable.
        best_stable: Option<CandidatePlan>,
        /// Every candidate.
        candidates: Vec<CandidatePlan>,
    },
}

/// Evaluates every EHCR grid point against the recall target and queue
/// stability (`headroom` of service rate held in reserve).
pub fn plan(run: &TaskRun, queue: &QueueConfig, target_recall: f64, headroom: f64) -> Plan {
    assert!((0.0..1.0).contains(&headroom), "headroom in [0, 1)");
    let horizon_frames = (run.test.len() * run.horizon).max(1) as f64;

    let candidates: Vec<CandidatePlan> = grids::ehcr()
        .into_iter()
        .map(|strategy| {
            let outcome = run.evaluate(&strategy);
            let duty_cycle = outcome.frames_relayed as f64 / horizon_frames;
            let rho = duty_cycle * queue.stream_fps / queue.ci.fps;
            CandidatePlan {
                strategy,
                outcome,
                duty_cycle,
                rho,
            }
        })
        .collect();

    let feasible = candidates
        .iter()
        .filter(|c| c.outcome.rec >= target_recall && c.is_stable(headroom))
        .min_by(|a, b| a.rho.total_cmp(&b.rho))
        .copied();

    match feasible {
        Some(chosen) => Plan::Feasible { chosen, candidates },
        None => {
            let best_stable = candidates
                .iter()
                .filter(|c| c.is_stable(headroom))
                .max_by(|a, b| a.outcome.rec.total_cmp(&b.outcome.rec))
                .copied();
            Plan::Infeasible {
                best_stable,
                candidates,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentConfig;
    use crate::tasks::task;
    use eventhit_video::detector::StageModel;

    fn quick_run() -> TaskRun {
        let cfg = ExperimentConfig {
            scale: 0.15,
            ..ExperimentConfig::quick(71)
        };
        TaskRun::execute(&task("TA10").unwrap(), &cfg)
    }

    #[test]
    fn stability_check_uses_headroom() {
        let c = CandidatePlan {
            strategy: Strategy::Eho { tau1: 0.5 },
            outcome: quick_outcome(),
            duty_cycle: 0.2,
            rho: 0.85,
        };
        assert!(c.is_stable(0.1));
        assert!(!c.is_stable(0.2));
    }

    fn quick_outcome() -> EvalOutcome {
        EvalOutcome {
            rec: 0.9,
            spl: 0.1,
            rec_c: 0.9,
            rec_r: 0.9,
            frames_relayed: 100,
            true_frames: 50,
            positives: 10,
            records: 20,
        }
    }

    #[test]
    fn generous_ci_makes_targets_feasible() {
        let run = quick_run();
        // A CI far faster than the stream: everything is stable.
        let queue = QueueConfig {
            stream_fps: 30.0,
            ci: StageModel::new("fast ci", 1000.0),
        };
        match plan(&run, &queue, 0.8, 0.2) {
            Plan::Feasible { chosen, candidates } => {
                assert!(chosen.outcome.rec >= 0.8);
                assert!(chosen.is_stable(0.2));
                assert!(!candidates.is_empty());
            }
            Plan::Infeasible { .. } => panic!("fast CI should make the target feasible"),
        }
    }

    #[test]
    fn starved_ci_is_infeasible_with_fallback() {
        let run = quick_run();
        // A CI that can barely process anything.
        let queue = QueueConfig {
            stream_fps: 30.0,
            ci: StageModel::new("slow ci", 0.01),
        };
        match plan(&run, &queue, 0.99, 0.2) {
            Plan::Infeasible {
                best_stable,
                candidates,
            } => {
                assert!(!candidates.is_empty());
                if let Some(b) = best_stable {
                    assert!(b.is_stable(0.2));
                }
            }
            Plan::Feasible { chosen, .. } => {
                panic!("0.01 fps CI cannot stably support rho {}", chosen.rho)
            }
        }
    }

    #[test]
    fn chosen_point_minimizes_load_among_feasible() {
        let run = quick_run();
        let queue = QueueConfig {
            stream_fps: 30.0,
            ci: StageModel::new("ci", 100.0),
        };
        if let Plan::Feasible { chosen, candidates } = plan(&run, &queue, 0.5, 0.1) {
            for c in candidates {
                if c.outcome.rec >= 0.5 && c.is_stable(0.1) {
                    assert!(chosen.rho <= c.rho + 1e-12);
                }
            }
        }
    }
}
