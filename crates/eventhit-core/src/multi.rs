//! Multiple event instances per time horizon — the paper's footnote 1
//! extension — and multi-stream marshalling lanes.
//!
//! §II simplifies to "at most one instance per horizon" but notes the
//! framework handles the general case by letting each event sub-network
//! make multiple predictions. This module provides that pathway: ground
//! truth as a *set* of intervals per horizon, θ-run splitting at inference
//! time (instead of Eq. 6's single min/max span), per-run conformal
//! widening, and frame-level metrics over interval sets.
//!
//! It also hosts the multi-*stream* execution path: a deployment
//! marshalling several cameras runs one [`StreamLane`] per stream, each
//! an independent [`OnlinePredictor`] over its own feature matrix.
//! [`run_lanes`] scores the lanes in parallel and merges their decisions
//! into one deterministic timeline ordered by `(anchor, stream_id)` —
//! the order a sequential loop interleaving the streams would produce.

use eventhit_conformal::regress::IntervalCalibration;
use eventhit_nn::matrix::Matrix;
use eventhit_parallel::{DeterministicReduce, Pool};
use eventhit_video::stream::VideoStream;

use crate::infer::EventScores;
use crate::streaming::{HorizonDecision, OnlinePredictor};

/// Ground truth of one (horizon, event) pair in the multi-instance
/// setting: every instance interval clipped to `[1, H]` offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiLabel {
    /// Clipped occurrence intervals, in start order; may be empty.
    pub intervals: Vec<(u32, u32)>,
    /// True iff the last instance runs past the horizon end.
    pub censored_last: bool,
}

impl MultiLabel {
    /// Total number of true event frames in the horizon.
    pub fn true_frames(&self) -> u64 {
        self.intervals
            .iter()
            .map(|&(s, e)| (e - s + 1) as u64)
            .sum()
    }

    /// True iff at least one instance intersects the horizon.
    pub fn any(&self) -> bool {
        !self.intervals.is_empty()
    }
}

/// Computes the multi-instance label of `class` for the horizon
/// `(anchor, anchor + h]`.
pub fn multi_horizon_label(
    stream: &VideoStream,
    class: usize,
    anchor: u64,
    h: usize,
) -> MultiLabel {
    let lo = anchor + 1;
    let hi = anchor + h as u64;
    let mut intervals = Vec::new();
    let mut censored_last = false;
    for inst in stream.all_intersecting(class, lo, hi) {
        let s = (inst.interval.start.max(lo) - anchor) as u32;
        let e = (inst.interval.end.min(hi) - anchor) as u32;
        intervals.push((s, e));
        censored_last = inst.interval.end > hi;
    }
    intervals.sort_unstable();
    MultiLabel {
        intervals,
        censored_last,
    }
}

/// Splits the θ scores into maximal runs above `tau2`, merging runs
/// separated by at most `merge_gap` frames (detector flicker), each run
/// becoming one predicted instance interval. With `merge_gap = H` this
/// degenerates to Eq. 6's single span.
pub fn theta_runs(scores: &EventScores, tau2: f32, merge_gap: u32) -> Vec<(u32, u32)> {
    let mut runs: Vec<(u32, u32)> = Vec::new();
    let mut current: Option<(u32, u32)> = None;
    for (idx, &t) in scores.theta.iter().enumerate() {
        let v = (idx + 1) as u32;
        if t >= tau2 {
            current = match current {
                None => Some((v, v)),
                Some((s, _)) => Some((s, v)),
            };
        } else if let Some((s, e)) = current {
            if v > e + merge_gap {
                runs.push((s, e));
                current = None;
            }
        }
    }
    if let Some(run) = current {
        runs.push(run);
    }
    runs
}

/// Multi-instance prediction for one event: existence by `b >= tau1`,
/// instances from θ runs, each optionally widened by C-REGRESS
/// calibration.
pub fn multi_predict(
    scores: &EventScores,
    tau1: f64,
    tau2: f32,
    merge_gap: u32,
    calibration: Option<(&IntervalCalibration, f64)>,
    horizon: u32,
) -> Vec<(u32, u32)> {
    if scores.b < tau1 {
        return Vec::new();
    }
    let runs = theta_runs(scores, tau2, merge_gap);
    match calibration {
        None => runs,
        Some((cal, alpha)) => {
            let widened: Vec<(u32, u32)> = runs
                .into_iter()
                .map(|(s, e)| cal.adjust(s, e, horizon, alpha))
                .collect();
            merge_overlapping(widened)
        }
    }
}

/// Merges overlapping/adjacent sorted-or-not interval sets.
pub fn merge_overlapping(mut intervals: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
    if intervals.is_empty() {
        return intervals;
    }
    intervals.sort_unstable();
    let mut out = vec![intervals[0]];
    for (s, e) in intervals.into_iter().skip(1) {
        let last = out.last_mut().expect("non-empty");
        if s <= last.1 + 1 {
            last.1 = last.1.max(e);
        } else {
            out.push((s, e));
        }
    }
    out
}

/// One logical lane of a multi-stream deployment: a predictor bound to
/// one stream's feature matrix. Lanes are independent by construction —
/// each owns its predictor (clone a trained model per lane) — which is
/// what lets [`run_lanes`] score them on separate threads with no shared
/// mutable state.
///
/// The inference lane (exact f32 vs the int8 fast lane) and the
/// [`SamplingPolicy`](crate::sampling::SamplingPolicy) both ride in
/// through the predictor: build it with
/// [`OnlinePredictor::with_lane`](crate::streaming::OnlinePredictor::with_lane)
/// or
/// [`OnlinePredictor::with_policy`](crate::streaming::OnlinePredictor::with_policy)
/// and [`run_lanes`] scores that configuration unchanged — the merge
/// logic is lane-agnostic, every policy's gate state is lane-local, and
/// all combinations stay bit-identical across worker counts.
pub struct StreamLane {
    /// Stable identifier of the stream; ties in the merged timeline break
    /// on it.
    pub stream_id: usize,
    /// The lane's predictor (owns its model and conformal state).
    pub predictor: OnlinePredictor,
    /// Per-frame feature matrix of this stream.
    pub features: Matrix,
    /// First feature row to feed.
    pub from: usize,
}

/// A [`HorizonDecision`] attributed to the stream that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneDecision {
    /// The lane's [`StreamLane::stream_id`].
    pub stream_id: usize,
    /// The decision, with anchors relative to that lane's stream.
    pub decision: HorizonDecision,
}

/// Runs every lane to completion — one pool task per lane — and merges
/// the decisions into a single timeline sorted by `(anchor, stream_id)`.
///
/// Each lane's arithmetic is untouched by the parallelism (the lane owns
/// all its state), and the merge key is a total order over decisions, so
/// the output is bit-identical for any worker count.
pub fn run_lanes(lanes: Vec<StreamLane>, pool: &Pool) -> Vec<LaneDecision> {
    let reduce = DeterministicReduce::with_capacity(lanes.len());
    pool.run_tasks(lanes, |i, mut lane| {
        let decisions = lane.predictor.run_over(&lane.features, lane.from);
        let tagged: Vec<LaneDecision> = decisions
            .into_iter()
            .map(|decision| LaneDecision {
                stream_id: lane.stream_id,
                decision,
            })
            .collect();
        reduce.submit(i, tagged);
    });
    let mut all: Vec<LaneDecision> = reduce.into_ordered().into_iter().flatten().collect();
    all.sort_by_key(|d| (d.decision.anchor, d.stream_id));
    all
}

/// Frame-level evaluation over interval sets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiOutcome {
    /// Fraction of true event frames covered by predictions.
    pub rec: f64,
    /// Fraction of non-event frames relayed.
    pub spl: f64,
    /// Fraction of true instances with at least one covered frame.
    pub instance_recall: f64,
    /// Total frames relayed.
    pub frames_relayed: u64,
}

/// Evaluates multi-instance predictions against multi-instance labels for
/// a batch of horizons of length `h`.
pub fn evaluate_multi(preds: &[Vec<(u32, u32)>], labels: &[MultiLabel], h: u32) -> MultiOutcome {
    assert_eq!(preds.len(), labels.len(), "one prediction set per horizon");
    let mut true_frames = 0u64;
    let mut covered_frames = 0u64;
    let mut relayed = 0u64;
    let mut spill = 0u64;
    let mut non_event = 0u64;
    let mut instances = 0u64;
    let mut found = 0u64;

    for (pred, label) in preds.iter().zip(labels) {
        let pred = merge_overlapping(pred.clone());
        let covered = |v: u32| pred.iter().any(|&(s, e)| (s..=e).contains(&v));
        let truth = |v: u32| label.intervals.iter().any(|&(s, e)| (s..=e).contains(&v));
        for v in 1..=h {
            let (p, t) = (covered(v), truth(v));
            if t {
                true_frames += 1;
                if p {
                    covered_frames += 1;
                }
            } else {
                non_event += 1;
                if p {
                    spill += 1;
                }
            }
            if p {
                relayed += 1;
            }
        }
        for &(s, e) in &label.intervals {
            instances += 1;
            if (s..=e).any(covered) {
                found += 1;
            }
        }
    }

    MultiOutcome {
        rec: if true_frames > 0 {
            covered_frames as f64 / true_frames as f64
        } else {
            1.0
        },
        spl: if non_event > 0 {
            spill as f64 / non_event as f64
        } else {
            0.0
        },
        instance_recall: if instances > 0 {
            found as f64 / instances as f64
        } else {
            1.0
        },
        frames_relayed: relayed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventhit_video::event::{EventClass, EventInstance, OccurrenceInterval};

    fn scores(theta: Vec<f32>) -> EventScores {
        EventScores { b: 0.9, theta }
    }

    fn stream_with(instances: Vec<(u64, u64)>) -> VideoStream {
        VideoStream {
            len: 10_000,
            classes: vec![EventClass {
                name: "c".into(),
                paper_id: "E1".into(),
                occurrences: 1,
                duration_mean: 10.0,
                duration_std: 1.0,
                lead_mean: 10.0,
                lead_std: 1.0,
                feature_noise: 0.0,
            }],
            instances: instances
                .into_iter()
                .map(|(s, e)| EventInstance {
                    class: 0,
                    interval: OccurrenceInterval::new(s, e),
                })
                .collect(),
        }
    }

    #[test]
    fn multi_label_collects_all_instances() {
        let s = stream_with(vec![(110, 120), (150, 400), (480, 700)]);
        let l = multi_horizon_label(&s, 0, 100, 500);
        assert_eq!(l.intervals, vec![(10, 20), (50, 300), (380, 500)]);
        assert!(l.censored_last);
        assert_eq!(l.true_frames(), 11 + 251 + 121);
        assert!(l.any());
    }

    #[test]
    fn multi_label_empty_when_no_instances() {
        let s = stream_with(vec![(5000, 5100)]);
        let l = multi_horizon_label(&s, 100, 500, 500);
        assert!(!l.any());
        assert_eq!(l.true_frames(), 0);
    }

    #[test]
    fn theta_runs_split_on_gaps() {
        // θ over offsets 1..=10: high at 2-3 and 7-9.
        let s = scores(vec![0.1, 0.9, 0.9, 0.1, 0.1, 0.1, 0.9, 0.9, 0.9, 0.1]);
        assert_eq!(theta_runs(&s, 0.5, 1), vec![(2, 3), (7, 9)]);
        // Large merge gap joins them (Eq. 6 behaviour).
        assert_eq!(theta_runs(&s, 0.5, 10), vec![(2, 9)]);
    }

    #[test]
    fn theta_runs_merge_small_flicker() {
        let s = scores(vec![0.9, 0.1, 0.9, 0.9, 0.0, 0.0, 0.0, 0.0]);
        // Gap of one frame at offset 2 is bridged with merge_gap 2.
        assert_eq!(theta_runs(&s, 0.5, 2), vec![(1, 4)]);
        assert_eq!(theta_runs(&s, 0.5, 0), vec![(1, 1), (3, 4)]);
    }

    #[test]
    fn theta_runs_empty_when_nothing_clears() {
        let s = scores(vec![0.1, 0.2, 0.3]);
        assert!(theta_runs(&s, 0.5, 1).is_empty());
    }

    #[test]
    fn multi_predict_respects_tau1_and_widens() {
        let s = scores(vec![0.1, 0.9, 0.9, 0.1, 0.1, 0.9, 0.9, 0.1, 0.1, 0.1]);
        assert!(multi_predict(&s, 0.95, 0.5, 1, None, 10).is_empty());
        let plain = multi_predict(&s, 0.5, 0.5, 1, None, 10);
        assert_eq!(plain, vec![(2, 3), (6, 7)]);
        let cal = IntervalCalibration::fit(vec![2.0, 2.0], vec![2.0, 2.0]);
        let widened = multi_predict(&s, 0.5, 0.5, 1, Some((&cal, 0.9)), 10);
        // Each run widened by 2 both ways, then merged: [1,5]+[4,9] -> [1,9].
        assert_eq!(widened, vec![(1, 9)]);
    }

    #[test]
    fn merge_overlapping_cases() {
        assert_eq!(merge_overlapping(vec![]), vec![]);
        assert_eq!(
            merge_overlapping(vec![(5, 6), (1, 2)]),
            vec![(1, 2), (5, 6)]
        );
        assert_eq!(merge_overlapping(vec![(1, 3), (3, 6)]), vec![(1, 6)]);
        assert_eq!(merge_overlapping(vec![(1, 3), (4, 6)]), vec![(1, 6)]); // adjacent
    }

    #[test]
    fn evaluate_multi_perfect_and_miss() {
        let labels = vec![MultiLabel {
            intervals: vec![(2, 4), (8, 9)],
            censored_last: false,
        }];
        let perfect = evaluate_multi(&[vec![(2, 4), (8, 9)]], &labels, 10);
        assert_eq!(perfect.rec, 1.0);
        assert_eq!(perfect.spl, 0.0);
        assert_eq!(perfect.instance_recall, 1.0);
        assert_eq!(perfect.frames_relayed, 5);

        let partial = evaluate_multi(&[vec![(2, 4)]], &labels, 10);
        assert!((partial.rec - 3.0 / 5.0).abs() < 1e-12);
        assert_eq!(partial.instance_recall, 0.5);

        let nothing = evaluate_multi(&[vec![]], &labels, 10);
        assert_eq!(nothing.rec, 0.0);
        assert_eq!(nothing.frames_relayed, 0);
    }

    #[test]
    fn evaluate_multi_spillage_only_on_non_event_frames() {
        let labels = vec![MultiLabel {
            intervals: vec![(1, 5)],
            censored_last: false,
        }];
        let o = evaluate_multi(&[vec![(1, 10)]], &labels, 10);
        assert_eq!(o.rec, 1.0);
        assert_eq!(o.spl, 1.0); // all 5 non-event frames relayed
    }

    #[test]
    fn single_span_equivalence_with_eq6() {
        // With merge_gap = H, theta_runs equals Eq. 6's single interval.
        use crate::infer::raw_interval;
        let s = scores(vec![0.1, 0.9, 0.1, 0.1, 0.9, 0.1]);
        let (lo, hi) = raw_interval(&s, 0.5);
        assert_eq!(theta_runs(&s, 0.5, 6), vec![(lo, hi)]);
    }
}
