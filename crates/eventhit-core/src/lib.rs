//! # eventhit-core
//!
//! The EventHit system (ICDE 2023, "Marshalling Model Inference in Video
//! Streams"): the shared-LSTM / per-event-head network of §III, end-to-end
//! training with the paper's `L1 + L2` losses, the EHO / EHC / EHR / EHCR
//! decision strategies (§VI.B) built on conformal calibration, the §VI.C
//! evaluation measures (`REC`, `SPL`, `REC_c`, `REC_r`, `FPS`), the Table II
//! task definitions, a cloud-inference cost simulator, and the online
//! marshaller of Fig. 1.
//!
//! The typical flow mirrors [`experiment::TaskRun::execute`]:
//!
//! 1. generate a stream and features ([`eventhit_video`]),
//! 2. train [`model::EventHit`] with [`train::train`],
//! 3. score calibration and test splits with [`infer::score_records`],
//! 4. fit [`pipeline::ConformalState`],
//! 5. evaluate any [`pipeline::Strategy`] with [`metrics::evaluate`], or
//!    deploy online with [`marshal::Marshaller`].

#![deny(missing_docs)]

pub mod capacity;
pub mod ci;
pub mod ci_queue;
pub mod drift;
pub mod error;
pub mod experiment;
pub mod faults;
pub mod infer;
pub mod marshal;
pub mod metrics;
pub mod model;
pub mod model_io;
pub mod multi;
pub mod pipeline;
pub mod report;
pub mod resilient;
pub mod sampling;
pub mod streaming;
pub mod tasks;
pub mod train;
pub mod tune;

pub use ci::{CiConfig, CostReport};
pub use error::{CoreError, CoreResult};
pub use experiment::{ExperimentConfig, TaskRun};
pub use faults::{FaultConfig, FaultInjector, FaultKind, FaultTrace};
pub use infer::{EventScores, IntervalPrediction, ScoredRecord};
pub use metrics::{evaluate, try_evaluate, EvalOutcome};
pub use model::{EventHit, EventHitConfig, QuantizedEventHit};
pub use pipeline::{ConformalState, Strategy};
pub use report::TelemetrySnapshot;
pub use resilient::{
    BreakerConfig, BreakerState, CircuitBreaker, DegradationMode, DegradationTag, ResilienceConfig,
    ResilienceStats, ResilientCiClient, RetryPolicy, SubmissionOutcome,
};
pub use sampling::{GateParams, SamplingPolicy, WindowParams};
pub use tasks::{all_tasks, task, DatasetKind, Task};
pub use train::{train, train_instrumented, TrainConfig, TrainReport};

pub use eventhit_telemetry::Telemetry;

pub use eventhit_nn::quant::InferenceLane;
