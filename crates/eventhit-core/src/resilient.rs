//! The resilient CI client: retry/backoff, circuit breaking, deadlines,
//! and graceful degradation around the faulty channel of [`crate::faults`].
//!
//! Everything runs on *simulated* wall-clock seconds (the discrete-event
//! convention of [`crate::ci_queue`]) and a dedicated RNG stream for
//! backoff jitter, so a submission's entire retry schedule is a pure
//! function of `(seed, submission order)` — faulted runs replay
//! bit-identically.
//!
//! The pieces:
//!
//! * [`RetryPolicy`] — capped exponential backoff with decorrelated
//!   jitter (the AWS architecture-blog discipline) plus a bounded
//!   per-submission retry budget.
//! * [`CircuitBreaker`] — the classic closed → open → half-open machine:
//!   consecutive failures trip it open, a cool-down admits probe
//!   requests, and enough probe successes close it again.
//! * [`ResilientCiClient`] — wraps a [`FaultInjector`] with the policy,
//!   the breaker, and a per-submission deadline, and degrades gracefully
//!   (dead-letter, defer, or local-only fallback) when delivery is
//!   impossible.

use std::sync::Arc;

use eventhit_rng::rngs::StdRng;
use eventhit_rng::Rng;
use eventhit_telemetry::{percentile, Telemetry};
use eventhit_video::detector::StageModel;

use crate::error::CoreError;
use crate::faults::{AttemptOutcome, FaultConfig, FaultInjector, FaultKind};

/// RNG stream id for backoff jitter (distinct from the fault stream).
pub const JITTER_STREAM_ID: u64 = 0xB0_FF;

// ---------------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------------

/// Capped exponential backoff with decorrelated jitter and a bounded
/// retry budget.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// First backoff delay (seconds).
    pub base_delay: f64,
    /// Hard cap on any single backoff delay (seconds).
    pub max_delay: f64,
    /// Maximum attempts per submission (1 = no retries).
    pub max_attempts: u32,
    /// Maximum cumulative backoff seconds per submission; once spent, no
    /// further retries regardless of `max_attempts`.
    pub retry_budget: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_delay: 0.5,
            max_delay: 30.0,
            max_attempts: 4,
            retry_budget: 60.0,
        }
    }
}

impl RetryPolicy {
    /// The deterministic cap on the delay before retry number `retry`
    /// (1-based): `min(max_delay, base * 2^(retry-1))`. Monotone
    /// non-decreasing in `retry`.
    pub fn cap_for(&self, retry: u32) -> f64 {
        let exp = retry.saturating_sub(1).min(52);
        (self.base_delay * (1u64 << exp) as f64).min(self.max_delay)
    }

    /// Samples the decorrelated-jitter delay for the next retry:
    /// `min(cap, uniform(base, 3 * prev))`, never below
    /// `min(base, max_delay)` and never above [`RetryPolicy::cap_for`].
    /// `prev` is the previous delay (pass `base_delay` before the first
    /// retry).
    pub fn backoff(&self, retry: u32, prev: f64, rng: &mut StdRng) -> f64 {
        let cap = self.cap_for(retry);
        let lo = self.base_delay.min(cap);
        let hi = (3.0 * prev.max(self.base_delay)).min(cap).max(lo);
        if hi <= lo {
            return lo;
        }
        rng.random_range(lo..=hi)
    }

    /// Validates the policy's domains.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !(self.base_delay.is_finite() && self.base_delay > 0.0) {
            return Err(CoreError::InvalidConfig(format!(
                "base_delay = {} must be finite and positive",
                self.base_delay
            )));
        }
        if !(self.max_delay.is_finite() && self.max_delay >= self.base_delay) {
            return Err(CoreError::InvalidConfig(format!(
                "max_delay = {} must be >= base_delay",
                self.max_delay
            )));
        }
        if self.max_attempts == 0 {
            return Err(CoreError::InvalidConfig(
                "max_attempts must be at least 1".into(),
            ));
        }
        if !(self.retry_budget.is_finite() && self.retry_budget >= 0.0) {
            return Err(CoreError::InvalidConfig(format!(
                "retry_budget = {} must be finite and non-negative",
                self.retry_budget
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

/// Circuit-breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow normally.
    Closed,
    /// Requests are rejected without touching the network.
    Open,
    /// Cool-down elapsed: probe requests are admitted one at a time.
    HalfOpen,
}

/// Circuit-breaker thresholds.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive failures (while closed) that trip the breaker.
    pub failure_threshold: u32,
    /// Seconds the breaker stays open before admitting probes.
    pub open_seconds: f64,
    /// Probe successes (while half-open) required to close again.
    pub close_threshold: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            open_seconds: 30.0,
            close_threshold: 2,
        }
    }
}

/// The closed → open → half-open machine. Purely time-driven on the
/// simulated clock: no background threads, every transition happens
/// inside [`CircuitBreaker::allow`] / `on_success` / `on_failure`.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    probe_successes: u32,
    opened_at: f64,
    /// Every state transition as `(sim_time, new_state)`, for tests and
    /// reports.
    pub transitions: Vec<(f64, BreakerState)>,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            probe_successes: 0,
            opened_at: 0.0,
            transitions: Vec::new(),
        }
    }

    /// Current state, after applying any cool-down transition due at `now`.
    pub fn state_at(&mut self, now: f64) -> BreakerState {
        if self.state == BreakerState::Open && now - self.opened_at >= self.cfg.open_seconds {
            self.transition(now, BreakerState::HalfOpen);
            self.probe_successes = 0;
        }
        self.state
    }

    /// True iff a request may be issued at `now`.
    pub fn allow(&mut self, now: f64) -> bool {
        self.state_at(now) != BreakerState::Open
    }

    /// Records a successful request finishing at `now`.
    pub fn on_success(&mut self, now: f64) {
        self.consecutive_failures = 0;
        if self.state_at(now) == BreakerState::HalfOpen {
            self.probe_successes += 1;
            if self.probe_successes >= self.cfg.close_threshold {
                self.transition(now, BreakerState::Closed);
            }
        }
    }

    /// Records a failed request finishing at `now`.
    pub fn on_failure(&mut self, now: f64) {
        match self.state_at(now) {
            // A failed probe re-opens immediately: the service is still
            // down, restart the cool-down.
            BreakerState::HalfOpen => {
                self.opened_at = now;
                self.transition(now, BreakerState::Open);
            }
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.cfg.failure_threshold {
                    self.opened_at = now;
                    self.transition(now, BreakerState::Open);
                }
            }
            BreakerState::Open => {}
        }
    }

    fn transition(&mut self, now: f64, to: BreakerState) {
        self.state = to;
        self.transitions.push((now, to));
    }
}

// ---------------------------------------------------------------------------
// Degradation
// ---------------------------------------------------------------------------

/// What to do with a submission that cannot be delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationMode {
    /// Drop the segment and log it to the dead-letter queue; its frames
    /// are lost and any event they covered becomes a fault-attributed
    /// miss.
    DropDeadLetter,
    /// Requeue the segment onto the next horizon's submission (one extra
    /// chance); if that fails too, dead-letter it.
    DeferNextHorizon,
    /// Trust the local C-REGRESS interval without CI confirmation: the
    /// segment counts as covered, flagged unconfirmed.
    LocalOnly,
}

/// How a decision was (or wasn't) degraded — carried on relay decisions
/// so downstream consumers can tell a clean verdict from a compromised
/// one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradationTag {
    /// Delivered first try.
    #[default]
    None,
    /// Delivered after `retries` retries.
    Retried {
        /// Number of retries (attempts − 1).
        retries: u32,
    },
    /// Dropped to the dead-letter queue.
    Dropped,
    /// Deferred to the next horizon.
    Deferred,
    /// Served locally without CI confirmation.
    LocalOnly,
}

/// Why a submission could not be delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailReason {
    /// The breaker was open when the submission arrived.
    CircuitOpen,
    /// The per-submission deadline elapsed mid-retry.
    DeadlineExceeded,
    /// All attempts (or the whole retry budget) were spent.
    RetriesExhausted,
}

impl From<FailReason> for CoreError {
    fn from(r: FailReason) -> CoreError {
        match r {
            FailReason::CircuitOpen => CoreError::CircuitOpen,
            FailReason::DeadlineExceeded => CoreError::DeadlineExceeded { deadline: f64::NAN },
            FailReason::RetriesExhausted => CoreError::RetriesExhausted { attempts: 0 },
        }
    }
}

/// A dead-lettered submission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadLetter {
    /// Simulated second the submission was abandoned.
    pub abandoned_at: f64,
    /// Frames that were never delivered.
    pub frames: u64,
    /// Why delivery failed.
    pub reason: FailReason,
}

/// Outcome of one resilient submission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SubmissionOutcome {
    /// Delivered to the CI.
    Delivered {
        /// Seconds lost to failed attempts and backoff before the
        /// successful attempt started.
        wasted: f64,
        /// Service seconds of the successful attempt (inflation included).
        service: f64,
        /// Total attempts made (≥ 1).
        attempts: u32,
    },
    /// Not delivered; handled according to the degradation mode.
    Degraded {
        /// How the submission was degraded.
        mode: DegradationMode,
        /// Attempts made before giving up (0 when the breaker rejected).
        attempts: u32,
        /// Why delivery failed.
        reason: FailReason,
    },
}

impl SubmissionOutcome {
    /// The degradation tag this outcome puts on the decision.
    pub fn tag(&self) -> DegradationTag {
        match *self {
            SubmissionOutcome::Delivered { attempts: 1, .. } => DegradationTag::None,
            SubmissionOutcome::Delivered { attempts, .. } => DegradationTag::Retried {
                retries: attempts - 1,
            },
            SubmissionOutcome::Degraded { mode, .. } => match mode {
                DegradationMode::DropDeadLetter => DegradationTag::Dropped,
                DegradationMode::DeferNextHorizon => DegradationTag::Deferred,
                DegradationMode::LocalOnly => DegradationTag::LocalOnly,
            },
        }
    }

    /// True iff the CI actually received the frames.
    pub fn is_delivered(&self) -> bool {
        matches!(self, SubmissionOutcome::Delivered { .. })
    }
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

/// Running counters and latency samples for one resilient client.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResilienceStats {
    /// Submissions issued.
    pub submissions: u64,
    /// Submissions delivered.
    pub delivered: u64,
    /// Submissions degraded (not delivered).
    pub degraded: u64,
    /// Total attempts across all submissions.
    pub attempts: u64,
    /// Total retries (attempts beyond each submission's first).
    pub retries: u64,
    /// Faults observed, by kind: transient, timeout, throttled, outage.
    pub faults: [u64; 4],
    /// Submissions rejected outright by the open breaker.
    pub breaker_rejections: u64,
    /// Submissions that blew their deadline.
    pub deadline_blown: u64,
    /// Frames submitted / delivered / dropped / served locally.
    pub frames_submitted: u64,
    /// Frames the CI actually received.
    pub frames_delivered: u64,
    /// Frames abandoned to the dead-letter queue.
    pub frames_dropped: u64,
    /// Frames served by the local-only fallback.
    pub frames_local: u64,
    /// End-to-end latency (wasted + service) of each delivered
    /// submission, in submission order.
    pub latencies: Vec<f64>,
}

impl ResilienceStats {
    /// Fraction of submissions delivered; 1.0 when nothing was submitted.
    pub fn availability(&self) -> f64 {
        if self.submissions == 0 {
            1.0
        } else {
            self.delivered as f64 / self.submissions as f64
        }
    }

    /// Latency quantile over delivered submissions (q in [0, 1]); `None`
    /// when nothing was delivered.
    pub fn latency_quantile(&self, q: f64) -> Option<f64> {
        let mut sorted = self.latencies.clone();
        sorted.sort_by(f64::total_cmp);
        percentile(&sorted, q)
    }

    /// `(p50, p95, p99)` faulted latency; `None` when nothing delivered.
    pub fn latency_percentiles(&self) -> Option<(f64, f64, f64)> {
        Some((
            self.latency_quantile(0.50)?,
            self.latency_quantile(0.95)?,
            self.latency_quantile(0.99)?,
        ))
    }

    fn record_fault(&mut self, kind: FaultKind) {
        let idx = match kind {
            FaultKind::Transient => 0,
            FaultKind::Timeout => 1,
            FaultKind::Throttled => 2,
            FaultKind::Outage => 3,
        };
        self.faults[idx] += 1;
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Full configuration of the resilient layer.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceConfig {
    /// Retry/backoff policy.
    pub retry: RetryPolicy,
    /// Circuit-breaker thresholds.
    pub breaker: BreakerConfig,
    /// End-to-end deadline per submission (seconds of simulated time from
    /// submission to delivery).
    pub deadline: f64,
    /// What to do with undeliverable submissions.
    pub degradation: DegradationMode,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            deadline: 120.0,
            degradation: DegradationMode::DropDeadLetter,
        }
    }
}

impl ResilienceConfig {
    /// Validates the nested policies and the deadline.
    pub fn validate(&self) -> Result<(), CoreError> {
        self.retry.validate()?;
        if !(self.deadline.is_finite() && self.deadline > 0.0) {
            return Err(CoreError::InvalidConfig(format!(
                "deadline = {} must be finite and positive",
                self.deadline
            )));
        }
        if !(self.breaker.open_seconds.is_finite() && self.breaker.open_seconds >= 0.0) {
            return Err(CoreError::InvalidConfig(format!(
                "breaker open_seconds = {} must be finite and non-negative",
                self.breaker.open_seconds
            )));
        }
        if self.breaker.failure_threshold == 0 || self.breaker.close_threshold == 0 {
            return Err(CoreError::InvalidConfig(
                "breaker thresholds must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// The resilient CI submission client: faults in, typed outcomes out.
#[derive(Debug, Clone)]
pub struct ResilientCiClient {
    cfg: ResilienceConfig,
    service: StageModel,
    injector: FaultInjector,
    breaker: CircuitBreaker,
    jitter: StdRng,
    /// Running counters and latency samples.
    pub stats: ResilienceStats,
    /// Abandoned submissions, in abandonment order.
    pub dead_letters: Vec<DeadLetter>,
    telemetry: Option<Arc<Telemetry>>,
}

/// Stable label for a fault kind (counter label on `ci.faults`).
fn fault_label(kind: FaultKind) -> &'static str {
    match kind {
        FaultKind::Transient => "transient",
        FaultKind::Timeout => "timeout",
        FaultKind::Throttled => "throttled",
        FaultKind::Outage => "outage",
    }
}

/// Stable label for a breaker state (counter label on
/// `ci.breaker_transitions`).
fn breaker_label(state: BreakerState) -> &'static str {
    match state {
        BreakerState::Closed => "closed",
        BreakerState::Open => "open",
        BreakerState::HalfOpen => "half_open",
    }
}

/// Stable label for a degradation mode (counter label on `ci.degraded`).
fn degradation_label(mode: DegradationMode) -> &'static str {
    match mode {
        DegradationMode::DropDeadLetter => "drop_dead_letter",
        DegradationMode::DeferNextHorizon => "defer_next_horizon",
        DegradationMode::LocalOnly => "local_only",
    }
}

impl ResilientCiClient {
    /// Builds a client over the given fault profile and CI service model.
    /// All randomness (faults and jitter) derives from `seed` on streams
    /// disjoint from the pipeline's.
    pub fn new(
        faults: FaultConfig,
        cfg: ResilienceConfig,
        service: StageModel,
        seed: u64,
    ) -> Result<Self, CoreError> {
        faults.validate()?;
        cfg.validate()?;
        Ok(ResilientCiClient {
            breaker: CircuitBreaker::new(cfg.breaker.clone()),
            cfg,
            service,
            injector: FaultInjector::new(faults, seed),
            jitter: StdRng::stream(seed, JITTER_STREAM_ID),
            stats: ResilienceStats::default(),
            dead_letters: Vec::new(),
            telemetry: None,
        })
    }

    /// Attaches a telemetry recorder: each submission then records the
    /// `ci.submissions` / `ci.delivered` / `ci.retries` counters, faults
    /// by kind (`ci.faults{transient,…}`), breaker transitions by target
    /// state, degradations by mode, and delivered latencies into the
    /// `ci.latency_seconds` histogram. With a manual-clock recorder the
    /// client also advances the clock to each submission's `now`.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.telemetry = Some(telemetry);
    }

    /// The configured degradation mode.
    pub fn degradation_mode(&self) -> DegradationMode {
        self.cfg.degradation
    }

    /// The configured per-submission deadline (seconds).
    pub fn config_deadline(&self) -> f64 {
        self.cfg.deadline
    }

    /// The fault trace accumulated so far (bit-reproducible from the seed).
    pub fn fault_trace(&self) -> &crate::faults::FaultTrace {
        &self.injector.trace
    }

    /// Breaker state at simulated time `now`.
    pub fn breaker_state(&mut self, now: f64) -> BreakerState {
        self.breaker.state_at(now)
    }

    /// The breaker's transition history `(sim_time, new_state)`.
    pub fn breaker_transitions(&self) -> &[(f64, BreakerState)] {
        &self.breaker.transitions
    }

    /// Submits `frames` frames at simulated time `now`. Runs the full
    /// retry/breaker/deadline pipeline and returns how the submission
    /// ended. Zero-frame submissions deliver instantly without touching
    /// the channel.
    pub fn submit(&mut self, frames: u64, now: f64) -> SubmissionOutcome {
        let Some(tel) = self.telemetry.clone() else {
            return self.submit_inner(frames, now);
        };
        tel.set_time(now);
        let _sub = tel.span("ci.submit");
        // Diff the running stats around the inner pipeline rather than
        // threading the recorder through the retry loop.
        let faults_before = self.stats.faults;
        let retries_before = self.stats.retries;
        let rejections_before = self.stats.breaker_rejections;
        let transitions_before = self.breaker.transitions.len();

        let out = self.submit_inner(frames, now);

        tel.add("ci.submissions", 1);
        match out {
            SubmissionOutcome::Delivered {
                wasted, service, ..
            } => {
                tel.add("ci.delivered", 1);
                tel.observe("ci.latency_seconds", wasted + service);
            }
            SubmissionOutcome::Degraded { mode, .. } => {
                tel.add_labeled("ci.degraded", degradation_label(mode), 1);
            }
        }
        for (kind, (&after, &before)) in [
            FaultKind::Transient,
            FaultKind::Timeout,
            FaultKind::Throttled,
            FaultKind::Outage,
        ]
        .into_iter()
        .zip(self.stats.faults.iter().zip(&faults_before))
        {
            if after > before {
                tel.add_labeled("ci.faults", fault_label(kind), after - before);
            }
        }
        if self.stats.retries > retries_before {
            tel.add("ci.retries", self.stats.retries - retries_before);
        }
        if self.stats.breaker_rejections > rejections_before {
            tel.add(
                "ci.breaker_rejections",
                self.stats.breaker_rejections - rejections_before,
            );
        }
        for &(_, state) in &self.breaker.transitions[transitions_before..] {
            tel.add_labeled("ci.breaker_transitions", breaker_label(state), 1);
        }
        out
    }

    fn submit_inner(&mut self, frames: u64, now: f64) -> SubmissionOutcome {
        self.stats.submissions += 1;
        self.stats.frames_submitted += frames;
        if frames == 0 {
            // Nothing to send: trivially delivered, no attempt consumed.
            self.stats.delivered += 1;
            self.stats.latencies.push(0.0);
            return SubmissionOutcome::Delivered {
                wasted: 0.0,
                service: 0.0,
                attempts: 1,
            };
        }

        if !self.breaker.allow(now) {
            self.stats.breaker_rejections += 1;
            return self.degrade(frames, now, 0, FailReason::CircuitOpen);
        }

        let service_nominal = self.service.seconds_for(frames);
        let mut wasted = 0.0f64;
        let mut backoff_spent = 0.0f64;
        let mut prev_delay = self.cfg.retry.base_delay;
        let mut attempts = 0u32;

        loop {
            attempts += 1;
            self.stats.attempts += 1;
            if attempts > 1 {
                self.stats.retries += 1;
            }
            let t_attempt = now + wasted;
            match self.injector.attempt(service_nominal) {
                AttemptOutcome::Success { latency } => {
                    let total = wasted + latency;
                    if total > self.cfg.deadline {
                        // Delivered too late to matter: the verdict is
                        // useless past the deadline, treat as failure.
                        self.stats.deadline_blown += 1;
                        self.breaker.on_failure(t_attempt + latency);
                        return self.degrade(
                            frames,
                            now + total,
                            attempts,
                            FailReason::DeadlineExceeded,
                        );
                    }
                    self.breaker.on_success(t_attempt + latency);
                    self.stats.delivered += 1;
                    self.stats.frames_delivered += frames;
                    self.stats.latencies.push(total);
                    return SubmissionOutcome::Delivered {
                        wasted,
                        service: latency,
                        attempts,
                    };
                }
                AttemptOutcome::Fault {
                    kind,
                    wasted: attempt_cost,
                    retry_after,
                } => {
                    self.stats.record_fault(kind);
                    wasted += attempt_cost;
                    self.breaker.on_failure(now + wasted);

                    if attempts >= self.cfg.retry.max_attempts {
                        return self.degrade(
                            frames,
                            now + wasted,
                            attempts,
                            FailReason::RetriesExhausted,
                        );
                    }
                    if !self.breaker.allow(now + wasted) {
                        // Mid-retry trip: stop hammering a dead service.
                        self.stats.breaker_rejections += 1;
                        return self.degrade(
                            frames,
                            now + wasted,
                            attempts,
                            FailReason::CircuitOpen,
                        );
                    }

                    let delay = self
                        .cfg
                        .retry
                        .backoff(attempts, prev_delay, &mut self.jitter)
                        .max(retry_after);
                    prev_delay = delay;
                    backoff_spent += delay;
                    if backoff_spent > self.cfg.retry.retry_budget {
                        return self.degrade(
                            frames,
                            now + wasted,
                            attempts,
                            FailReason::RetriesExhausted,
                        );
                    }
                    wasted += delay;
                    if wasted >= self.cfg.deadline {
                        self.stats.deadline_blown += 1;
                        return self.degrade(
                            frames,
                            now + wasted,
                            attempts,
                            FailReason::DeadlineExceeded,
                        );
                    }
                }
            }
        }
    }

    fn degrade(
        &mut self,
        frames: u64,
        at: f64,
        attempts: u32,
        reason: FailReason,
    ) -> SubmissionOutcome {
        self.stats.degraded += 1;
        match self.cfg.degradation {
            DegradationMode::DropDeadLetter => {
                self.stats.frames_dropped += frames;
                self.dead_letters.push(DeadLetter {
                    abandoned_at: at,
                    frames,
                    reason,
                });
            }
            // Deferral bookkeeping is the caller's job (it owns the next
            // horizon); frames count as dropped only if the redelivery
            // fails too, which the caller reports via `dead_letter`.
            DegradationMode::DeferNextHorizon => {}
            DegradationMode::LocalOnly => {
                self.stats.frames_local += frames;
            }
        }
        SubmissionOutcome::Degraded {
            mode: self.cfg.degradation,
            attempts,
            reason,
        }
    }

    /// Explicitly dead-letters frames (used by callers implementing
    /// deferral when the second chance fails too).
    pub fn dead_letter(&mut self, frames: u64, at: f64, reason: FailReason) {
        self.stats.frames_dropped += frames;
        self.dead_letters.push(DeadLetter {
            abandoned_at: at,
            frames,
            reason,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventhit_rng::SeedableRng;

    fn client(faults: FaultConfig, cfg: ResilienceConfig) -> ResilientCiClient {
        ResilientCiClient::new(faults, cfg, StageModel::new("ci", 10.0), 11).unwrap()
    }

    #[test]
    fn backoff_caps_are_monotone_and_bounded() {
        let p = RetryPolicy::default();
        let mut prev = 0.0;
        for retry in 1..20 {
            let cap = p.cap_for(retry);
            assert!(cap >= prev, "caps must not decrease");
            assert!(cap <= p.max_delay);
            prev = cap;
        }
        assert_eq!(p.cap_for(1), p.base_delay);
    }

    #[test]
    fn backoff_samples_respect_bounds() {
        let p = RetryPolicy {
            base_delay: 0.25,
            max_delay: 8.0,
            max_attempts: 10,
            retry_budget: 1e9,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let mut prev = p.base_delay;
        for retry in 1..12 {
            let d = p.backoff(retry, prev, &mut rng);
            assert!(
                d >= p.base_delay.min(p.cap_for(retry)),
                "delay {d} below floor"
            );
            assert!(d <= p.cap_for(retry) + 1e-12, "delay {d} above cap");
            prev = d;
        }
    }

    #[test]
    fn reliable_channel_delivers_first_try() {
        let mut c = client(FaultConfig::reliable(), ResilienceConfig::default());
        let out = c.submit(100, 0.0);
        assert_eq!(
            out,
            SubmissionOutcome::Delivered {
                wasted: 0.0,
                service: 10.0,
                attempts: 1
            }
        );
        assert_eq!(out.tag(), DegradationTag::None);
        assert_eq!(c.stats.availability(), 1.0);
        assert_eq!(c.stats.frames_delivered, 100);
    }

    #[test]
    fn zero_frames_deliver_without_an_attempt() {
        let mut c = client(FaultConfig::lossy(), ResilienceConfig::default());
        let out = c.submit(0, 0.0);
        assert!(out.is_delivered());
        assert!(c.fault_trace().entries.is_empty(), "channel untouched");
    }

    #[test]
    fn transient_faults_are_retried_and_tagged() {
        // Fail the first attempts deterministically high transient prob,
        // generous retry allowance: deliveries should mostly succeed with
        // Retried tags.
        let faults = FaultConfig {
            transient_prob: 0.5,
            ..FaultConfig::reliable()
        };
        let cfg = ResilienceConfig {
            retry: RetryPolicy {
                max_attempts: 8,
                retry_budget: 1e6,
                ..RetryPolicy::default()
            },
            // Keep the breaker out of the picture: at p=0.5 a run of five
            // consecutive failed attempts is common over 50 submissions.
            breaker: BreakerConfig {
                failure_threshold: u32::MAX,
                ..BreakerConfig::default()
            },
            deadline: 1e6,
            ..ResilienceConfig::default()
        };
        let mut c = client(faults, cfg);
        let mut retried = 0;
        for i in 0..50 {
            match c.submit(10, i as f64 * 100.0) {
                SubmissionOutcome::Delivered { attempts, .. } if attempts > 1 => retried += 1,
                SubmissionOutcome::Delivered { .. } => {}
                o => panic!("with 8 attempts at p=0.5 failure is ~0.4%: {o:?}"),
            }
        }
        assert!(retried > 10, "retries happened: {retried}");
        assert_eq!(c.stats.retries as usize, c.stats.attempts as usize - 50);
        assert!(c.stats.availability() > 0.99);
    }

    #[test]
    fn permanent_outage_exhausts_retries_then_trips_breaker() {
        let faults = FaultConfig {
            p_good_to_bad: 1.0,
            p_bad_to_good: 0.0,
            bad_loss: 1.0,
            ..FaultConfig::reliable()
        };
        let mut c = client(faults, ResilienceConfig::default());
        let out = c.submit(50, 0.0);
        match out {
            SubmissionOutcome::Degraded {
                mode: DegradationMode::DropDeadLetter,
                reason,
                ..
            } => assert!(
                matches!(
                    reason,
                    FailReason::RetriesExhausted | FailReason::CircuitOpen
                ),
                "reason {reason:?}"
            ),
            o => panic!("expected degradation, got {o:?}"),
        }
        assert_eq!(out.tag(), DegradationTag::Dropped);
        assert_eq!(c.dead_letters.len(), 1);
        assert_eq!(c.stats.frames_dropped, 50);

        // Keep submitting: the breaker must eventually reject without
        // attempting (consecutive failures >= threshold).
        let mut rejected = false;
        let mut t = 1.0;
        for _ in 0..5 {
            if let SubmissionOutcome::Degraded {
                reason: FailReason::CircuitOpen,
                attempts: 0,
                ..
            } = c.submit(50, t)
            {
                rejected = true;
                break;
            }
            t += 1.0;
        }
        assert!(rejected, "breaker should open under sustained failure");
        assert!(c.stats.breaker_rejections > 0);
        assert!(c.stats.availability() < 1.0);
    }

    #[test]
    fn breaker_recovers_through_half_open() {
        let cfg = BreakerConfig {
            failure_threshold: 2,
            open_seconds: 10.0,
            close_threshold: 2,
        };
        let mut b = CircuitBreaker::new(cfg);
        assert_eq!(b.state_at(0.0), BreakerState::Closed);
        b.on_failure(1.0);
        b.on_failure(2.0);
        assert_eq!(b.state_at(2.0), BreakerState::Open);
        assert!(!b.allow(5.0), "still cooling down");
        assert!(b.allow(12.5), "cool-down elapsed admits probes");
        assert_eq!(b.state_at(12.5), BreakerState::HalfOpen);
        b.on_success(13.0);
        assert_eq!(b.state_at(13.0), BreakerState::HalfOpen);
        b.on_success(14.0);
        assert_eq!(b.state_at(14.0), BreakerState::Closed);

        // Transition log: Closed →(2.0) Open →(12.5) HalfOpen →(14.0) Closed.
        assert_eq!(
            b.transitions,
            vec![
                (2.0, BreakerState::Open),
                (12.5, BreakerState::HalfOpen),
                (14.0, BreakerState::Closed),
            ]
        );
    }

    #[test]
    fn failed_probe_reopens() {
        let cfg = BreakerConfig {
            failure_threshold: 1,
            open_seconds: 5.0,
            close_threshold: 1,
        };
        let mut b = CircuitBreaker::new(cfg);
        b.on_failure(0.0);
        assert_eq!(b.state_at(0.0), BreakerState::Open);
        assert!(b.allow(6.0));
        b.on_failure(6.0);
        assert_eq!(b.state_at(6.0), BreakerState::Open);
        assert!(!b.allow(10.0), "cool-down restarted at 6.0");
        assert!(b.allow(11.5));
    }

    #[test]
    fn local_only_mode_marks_frames_local() {
        let faults = FaultConfig {
            transient_prob: 1.0,
            ..FaultConfig::reliable()
        };
        let cfg = ResilienceConfig {
            degradation: DegradationMode::LocalOnly,
            retry: RetryPolicy {
                max_attempts: 2,
                ..RetryPolicy::default()
            },
            ..ResilienceConfig::default()
        };
        let mut c = client(faults, cfg);
        let out = c.submit(30, 0.0);
        assert_eq!(out.tag(), DegradationTag::LocalOnly);
        assert_eq!(c.stats.frames_local, 30);
        assert!(c.dead_letters.is_empty(), "local fallback is not a drop");
    }

    #[test]
    fn deadline_blows_are_counted() {
        let faults = FaultConfig {
            latency_inflation: 0.0,
            ..FaultConfig::reliable()
        };
        let cfg = ResilienceConfig {
            deadline: 1.0, // service of 100 frames at 10 fps = 10 s > 1 s
            ..ResilienceConfig::default()
        };
        let mut c = client(faults, cfg);
        let out = c.submit(100, 0.0);
        assert!(matches!(
            out,
            SubmissionOutcome::Degraded {
                reason: FailReason::DeadlineExceeded,
                ..
            }
        ));
        assert_eq!(c.stats.deadline_blown, 1);
    }

    #[test]
    fn stats_percentiles_are_ordered() {
        let mut c = client(FaultConfig::lossy(), ResilienceConfig::default());
        for i in 0..200 {
            c.submit(20, i as f64 * 50.0);
        }
        if let Some((p50, p95, p99)) = c.stats.latency_percentiles() {
            assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        }
        assert_eq!(
            c.stats.delivered + c.stats.degraded,
            c.stats.submissions,
            "every submission accounted"
        );
    }

    #[test]
    fn telemetry_mirrors_resilience_stats() {
        let mut c = client(FaultConfig::lossy(), ResilienceConfig::default());
        let tel = Arc::new(Telemetry::with_manual_clock());
        c.set_telemetry(Arc::clone(&tel));
        for i in 0..100 {
            c.submit(20, i as f64 * 50.0);
        }
        let snap = tel.snapshot();
        assert_eq!(snap.counter("ci.submissions"), Some(c.stats.submissions));
        assert_eq!(snap.counter("ci.delivered").unwrap_or(0), c.stats.delivered);
        assert_eq!(snap.counter("ci.retries").unwrap_or(0), c.stats.retries);
        assert_eq!(
            snap.counter_total("ci.faults"),
            c.stats.faults.iter().sum::<u64>()
        );
        assert_eq!(
            snap.counter_labeled("ci.faults", "outage").unwrap_or(0),
            c.stats.faults[3]
        );
        assert_eq!(snap.counter_total("ci.degraded"), c.stats.degraded);
        assert_eq!(
            snap.counter_total("ci.breaker_transitions") as usize,
            c.breaker_transitions().len()
        );
        let h = snap.histogram("ci.latency_seconds").unwrap();
        assert_eq!(h.count(), c.stats.latencies.len() as u64);
        // Attaching telemetry must not perturb the client's own behavior:
        // same seed without a recorder yields identical stats.
        let mut plain = client(FaultConfig::lossy(), ResilienceConfig::default());
        for i in 0..100 {
            plain.submit(20, i as f64 * 50.0);
        }
        assert_eq!(plain.stats, c.stats);
        assert_eq!(
            plain.fault_trace().fingerprint(),
            c.fault_trace().fingerprint()
        );
    }

    #[test]
    fn same_seed_same_everything() {
        let run = |seed: u64| {
            let mut c = ResilientCiClient::new(
                FaultConfig::lossy(),
                ResilienceConfig::default(),
                StageModel::new("ci", 10.0),
                seed,
            )
            .unwrap();
            let outs: Vec<SubmissionOutcome> =
                (0..100).map(|i| c.submit(25, i as f64 * 40.0)).collect();
            (outs, c.fault_trace().fingerprint(), c.stats.clone())
        };
        let (oa, fa, sa) = run(77);
        let (ob, fb, sb) = run(77);
        assert_eq!(oa, ob);
        assert_eq!(fa, fb);
        assert_eq!(sa, sb);
        let (_, fc, _) = run(78);
        assert_ne!(fa, fc);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let bad_retry = ResilienceConfig {
            retry: RetryPolicy {
                max_attempts: 0,
                ..RetryPolicy::default()
            },
            ..ResilienceConfig::default()
        };
        assert!(ResilientCiClient::new(
            FaultConfig::reliable(),
            bad_retry,
            StageModel::new("ci", 10.0),
            1
        )
        .is_err());
        let bad_faults = FaultConfig {
            bad_loss: 2.0,
            ..FaultConfig::reliable()
        };
        assert!(ResilientCiClient::new(
            bad_faults,
            ResilienceConfig::default(),
            StageModel::new("ci", 10.0),
            1
        )
        .is_err());
    }
}
