//! Discrete-event simulation of the CI's request queue.
//!
//! The paper's FPS measure (§VI.C) is a throughput average; a deployment
//! also cares about *detection latency* — how long after a segment is
//! relayed does the CI's verdict come back? Relays are bursty (whole
//! predicted intervals at horizon boundaries), so when the offered load
//! approaches the CI's service rate, queueing delay dominates. This module
//! simulates a FIFO single-server queue (the paper's i.i.d./Poisson
//! arrival framing, §I, cites Kleinrock for exactly this machinery) fed by
//! relay segments and reports latency percentiles and backlog.

use eventhit_video::detector::StageModel;

/// A relay request: `frames` frames submitted when stream frame
/// `arrival_frame` has been captured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Submission {
    /// Stream frame index at which the request is issued.
    pub arrival_frame: u64,
    /// Number of frames to process.
    pub frames: u64,
}

/// Queue configuration: the camera's capture rate and the CI's service
/// model.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueConfig {
    /// Stream capture rate (frames per second of wall clock).
    pub stream_fps: f64,
    /// The CI service model.
    pub ci: StageModel,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            stream_fps: 30.0,
            ci: StageModel::i3d_ci(),
        }
    }
}

/// Simulation results.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueReport {
    /// Number of requests served.
    pub completed: usize,
    /// Server utilization over the busy horizon, in [0, 1].
    pub utilization: f64,
    /// Mean seconds from submission to completion.
    pub mean_latency: f64,
    /// 95th-percentile latency (seconds).
    pub p95_latency: f64,
    /// Maximum latency (seconds).
    pub max_latency: f64,
    /// Largest backlog observed at any arrival, in frames awaiting service.
    pub max_backlog_frames: u64,
}

/// Simulates the FIFO queue over submissions (must be sorted by
/// `arrival_frame`). Returns `None` for an empty submission list.
pub fn simulate(submissions: &[Submission], cfg: &QueueConfig) -> Option<QueueReport> {
    if submissions.is_empty() {
        return None;
    }
    assert!(cfg.stream_fps > 0.0);
    debug_assert!(
        submissions
            .windows(2)
            .all(|w| w[0].arrival_frame <= w[1].arrival_frame),
        "submissions must be sorted by arrival"
    );

    let mut free_at = 0.0f64;
    let mut latencies = Vec::with_capacity(submissions.len());
    let mut busy = 0.0f64;
    let mut max_backlog = 0u64;
    let mut backlog_until: Vec<(f64, u64)> = Vec::new(); // (finish_time, frames)

    let first_arrival = submissions[0].arrival_frame as f64 / cfg.stream_fps;
    for sub in submissions {
        let arrival = sub.arrival_frame as f64 / cfg.stream_fps;
        // Backlog at this arrival: frames of requests not yet finished.
        backlog_until.retain(|&(finish, _)| finish > arrival);
        let backlog: u64 = backlog_until.iter().map(|&(_, f)| f).sum::<u64>() + sub.frames;
        max_backlog = max_backlog.max(backlog);

        let start = free_at.max(arrival);
        let service = cfg.ci.seconds_for(sub.frames);
        let finish = start + service;
        busy += service;
        latencies.push(finish - arrival);
        backlog_until.push((finish, sub.frames));
        free_at = finish;
    }

    latencies.sort_by(f64::total_cmp);
    let n = latencies.len();
    let span = (free_at - first_arrival).max(f64::MIN_POSITIVE);
    Some(QueueReport {
        completed: n,
        utilization: (busy / span).min(1.0),
        mean_latency: latencies.iter().sum::<f64>() / n as f64,
        p95_latency: latencies[((0.95 * n as f64).ceil() as usize).clamp(1, n) - 1],
        max_latency: latencies[n - 1],
        max_backlog_frames: max_backlog,
    })
}

/// Builds submissions from marshalled relay segments: each segment is
/// submitted when its last frame has been captured.
pub fn submissions_from_segments(segments: &[(u64, u64)]) -> Vec<Submission> {
    let mut subs: Vec<Submission> = segments
        .iter()
        .map(|&(start, end)| Submission {
            arrival_frame: end,
            frames: end - start + 1,
        })
        .collect();
    subs.sort_by_key(|s| s.arrival_frame);
    subs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(stream_fps: f64, ci_fps: f64) -> QueueConfig {
        QueueConfig {
            stream_fps,
            ci: StageModel::new("ci", ci_fps),
        }
    }

    #[test]
    fn empty_submissions_yield_none() {
        assert!(simulate(&[], &QueueConfig::default()).is_none());
    }

    #[test]
    fn underloaded_queue_latency_is_service_time() {
        // One 80-frame request every 1000 frames (33 s) with 10 fps CI:
        // service = 8 s < inter-arrival, so no queueing.
        let subs: Vec<Submission> = (1..=10)
            .map(|i| Submission {
                arrival_frame: i * 1000,
                frames: 80,
            })
            .collect();
        let r = simulate(&subs, &cfg(30.0, 10.0)).unwrap();
        assert_eq!(r.completed, 10);
        assert!(
            (r.mean_latency - 8.0).abs() < 1e-9,
            "mean={}",
            r.mean_latency
        );
        assert!((r.max_latency - 8.0).abs() < 1e-9);
        assert!(r.utilization < 0.5);
        assert_eq!(r.max_backlog_frames, 80);
    }

    #[test]
    fn overloaded_queue_latency_grows() {
        // 300-frame requests every 300 frames (10 s) with CI 10 fps:
        // service = 30 s per request — queue grows linearly.
        let subs: Vec<Submission> = (1..=10)
            .map(|i| Submission {
                arrival_frame: i * 300,
                frames: 300,
            })
            .collect();
        let r = simulate(&subs, &cfg(30.0, 10.0)).unwrap();
        // Latencies ramp linearly (30, 50, …, 210 s): max ≈ 1.75× mean.
        assert!(r.max_latency > 1.5 * r.mean_latency, "latency should grow");
        assert!(r.utilization > 0.95);
        assert!(r.max_backlog_frames > 300);
        // Last request waits behind ~9 predecessors: ~(9*30 - 90) + 30 s.
        assert!(r.max_latency > 150.0, "max={}", r.max_latency);
    }

    #[test]
    fn latencies_are_fifo_ordered() {
        let subs = vec![
            Submission {
                arrival_frame: 0,
                frames: 100,
            },
            Submission {
                arrival_frame: 1,
                frames: 10,
            },
        ];
        let r = simulate(&subs, &cfg(30.0, 10.0)).unwrap();
        // Second request waits for the first: latency ≈ 10 + 1 ≈ 11 s.
        assert!(r.max_latency > 10.0);
    }

    #[test]
    fn submissions_from_segments_sorted_by_arrival() {
        let subs = submissions_from_segments(&[(50, 80), (10, 20)]);
        assert_eq!(
            subs[0],
            Submission {
                arrival_frame: 20,
                frames: 11
            }
        );
        assert_eq!(
            subs[1],
            Submission {
                arrival_frame: 80,
                frames: 31
            }
        );
    }

    #[test]
    fn lighter_relay_load_means_lower_latency() {
        // The marshalling argument in queue form: EHCR-style sparse relays
        // vs BF-style full-horizon relays at the same service rate.
        let bf: Vec<Submission> = (1..=20)
            .map(|i| Submission {
                arrival_frame: i * 500,
                frames: 500,
            })
            .collect();
        let ehcr: Vec<Submission> = (1..=20)
            .map(|i| Submission {
                arrival_frame: i * 500,
                frames: 100,
            })
            .collect();
        let c = cfg(30.0, 8.0);
        let r_bf = simulate(&bf, &c).unwrap();
        let r_ehcr = simulate(&ehcr, &c).unwrap();
        assert!(r_ehcr.mean_latency < r_bf.mean_latency / 2.0);
        assert!(r_ehcr.p95_latency < r_bf.p95_latency);
    }

    #[test]
    fn percentiles_are_consistent() {
        let subs: Vec<Submission> = (0..100)
            .map(|i| Submission {
                arrival_frame: i * 100,
                frames: 50,
            })
            .collect();
        let r = simulate(&subs, &cfg(30.0, 20.0)).unwrap();
        assert!(r.mean_latency <= r.p95_latency + 1e-12);
        assert!(r.p95_latency <= r.max_latency + 1e-12);
    }
}
