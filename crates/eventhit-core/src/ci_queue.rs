//! Discrete-event simulation of the CI's request queue.
//!
//! The paper's FPS measure (§VI.C) is a throughput average; a deployment
//! also cares about *detection latency* — how long after a segment is
//! relayed does the CI's verdict come back? Relays are bursty (whole
//! predicted intervals at horizon boundaries), so when the offered load
//! approaches the CI's service rate, queueing delay dominates. This module
//! simulates a FIFO single-server queue (the paper's i.i.d./Poisson
//! arrival framing, §I, cites Kleinrock for exactly this machinery) fed by
//! relay segments and reports latency percentiles and backlog.

use eventhit_telemetry::{percentile, Telemetry};
use eventhit_video::detector::StageModel;

use crate::resilient::{ResilientCiClient, SubmissionOutcome};

/// A relay request: `frames` frames submitted when stream frame
/// `arrival_frame` has been captured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Submission {
    /// Stream frame index at which the request is issued.
    pub arrival_frame: u64,
    /// Number of frames to process.
    pub frames: u64,
}

/// Queue configuration: the camera's capture rate and the CI's service
/// model.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueConfig {
    /// Stream capture rate (frames per second of wall clock).
    pub stream_fps: f64,
    /// The CI service model.
    pub ci: StageModel,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            stream_fps: 30.0,
            ci: StageModel::i3d_ci(),
        }
    }
}

/// Simulation results.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueReport {
    /// Number of requests served.
    pub completed: usize,
    /// Server utilization over the busy horizon, in [0, 1].
    pub utilization: f64,
    /// Mean seconds from submission to completion.
    pub mean_latency: f64,
    /// Median latency (seconds).
    pub p50_latency: f64,
    /// 95th-percentile latency (seconds).
    pub p95_latency: f64,
    /// 99th-percentile latency (seconds).
    pub p99_latency: f64,
    /// Maximum latency (seconds).
    pub max_latency: f64,
    /// Largest backlog observed at any arrival, in frames awaiting service.
    pub max_backlog_frames: u64,
}

impl QueueReport {
    /// A zeroed profile (used when nothing was ever served) carrying only
    /// the observed backlog.
    fn empty(max_backlog_frames: u64) -> Self {
        QueueReport {
            completed: 0,
            utilization: 0.0,
            mean_latency: 0.0,
            p50_latency: 0.0,
            p95_latency: 0.0,
            p99_latency: 0.0,
            max_latency: 0.0,
            max_backlog_frames,
        }
    }

    /// The single construction path for a served-latency profile, shared
    /// by the plain and resilient simulators so their reports stay
    /// field-for-field comparable. Sorts `latencies` in place.
    fn from_latencies(
        latencies: &mut [f64],
        busy: f64,
        span: f64,
        max_backlog_frames: u64,
    ) -> Self {
        latencies.sort_by(f64::total_cmp);
        let n = latencies.len();
        let span = span.max(f64::MIN_POSITIVE);
        QueueReport {
            completed: n,
            utilization: (busy / span).min(1.0),
            mean_latency: latencies.iter().sum::<f64>() / n as f64,
            p50_latency: percentile(latencies, 0.50).unwrap_or(0.0),
            p95_latency: percentile(latencies, 0.95).unwrap_or(0.0),
            p99_latency: percentile(latencies, 0.99).unwrap_or(0.0),
            max_latency: latencies[n - 1],
            max_backlog_frames,
        }
    }
}

/// Simulates the FIFO queue over submissions (must be sorted by
/// `arrival_frame`). Returns `None` for an empty submission list or a
/// non-positive capture rate (a dead camera offers no load — nothing to
/// simulate, not a panic).
pub fn simulate(submissions: &[Submission], cfg: &QueueConfig) -> Option<QueueReport> {
    simulate_instrumented(submissions, cfg, None)
}

/// [`simulate`] with telemetry. The recorder is expected to be on the
/// manual clock: the simulator advances it to each arrival time, so the
/// backlog gauge and per-submission latency histogram live on the
/// simulated timeline and are bit-deterministic.
pub fn simulate_instrumented(
    submissions: &[Submission],
    cfg: &QueueConfig,
    tel: Option<&Telemetry>,
) -> Option<QueueReport> {
    if submissions.is_empty() || !cfg.stream_fps.is_finite() || cfg.stream_fps <= 0.0 {
        return None;
    }
    debug_assert!(
        submissions
            .windows(2)
            .all(|w| w[0].arrival_frame <= w[1].arrival_frame),
        "submissions must be sorted by arrival"
    );

    let mut free_at = 0.0f64;
    let mut latencies = Vec::with_capacity(submissions.len());
    let mut busy = 0.0f64;
    let mut max_backlog = 0u64;
    let mut backlog_until: Vec<(f64, u64)> = Vec::new(); // (finish_time, frames)

    let _sim = tel.map(|t| t.span("ciq.simulate"));
    let first_arrival = submissions[0].arrival_frame as f64 / cfg.stream_fps;
    for sub in submissions {
        let arrival = sub.arrival_frame as f64 / cfg.stream_fps;
        // Backlog at this arrival: frames of requests not yet finished.
        backlog_until.retain(|&(finish, _)| finish > arrival);
        let backlog: u64 = backlog_until.iter().map(|&(_, f)| f).sum::<u64>() + sub.frames;
        max_backlog = max_backlog.max(backlog);

        let start = free_at.max(arrival);
        let service = cfg.ci.seconds_for(sub.frames);
        let finish = start + service;
        busy += service;
        let latency = finish - arrival;
        latencies.push(latency);
        backlog_until.push((finish, sub.frames));
        free_at = finish;
        if let Some(t) = tel {
            t.set_time(arrival);
            t.add("ciq.submissions", 1);
            t.add("ciq.frames", sub.frames);
            t.gauge_set("ciq.backlog_frames", backlog as f64);
            t.observe("ciq.latency_seconds", latency);
        }
    }
    if let Some(t) = tel {
        t.set_time(free_at);
        t.add("ciq.completed", latencies.len() as u64);
    }

    // `span` covers both degenerate shapes: a single instantaneous burst
    // (all arrivals equal, zero-frame requests => span 0) and offered
    // load at or above the service rate (span = busy time, utilization
    // exactly 1, never a negative residual).
    let span = free_at - first_arrival;
    Some(QueueReport::from_latencies(
        &mut latencies,
        busy,
        span,
        max_backlog,
    ))
}

/// [`QueueReport`] plus the resilience counters of a faulted run.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientQueueReport {
    /// Queue metrics over *delivered* submissions only.
    pub queue: QueueReport,
    /// Submissions degraded (never served).
    pub degraded: usize,
    /// Frames belonging to degraded submissions.
    pub degraded_frames: u64,
    /// Fraction of submissions that were served.
    pub availability: f64,
}

/// Simulates the FIFO queue with every submission passing through the
/// resilient client first. Retries re-enter the discrete-event timeline:
/// a submission delivered after `wasted` seconds of failed attempts and
/// backoff effectively *arrives* that much later, so outages and retry
/// storms grow the backlog exactly as they would in a deployment.
/// Degraded submissions never occupy the server but are counted.
///
/// Returns `None` under the same conditions as [`simulate`].
pub fn simulate_resilient(
    submissions: &[Submission],
    cfg: &QueueConfig,
    client: &mut ResilientCiClient,
) -> Option<ResilientQueueReport> {
    simulate_resilient_instrumented(submissions, cfg, client, None)
}

/// [`simulate_resilient`] with telemetry: the queue metrics above plus the
/// resilient client's own counters (faults, retries, breaker transitions)
/// when the client carries the same recorder.
pub fn simulate_resilient_instrumented(
    submissions: &[Submission],
    cfg: &QueueConfig,
    client: &mut ResilientCiClient,
    tel: Option<&Telemetry>,
) -> Option<ResilientQueueReport> {
    if submissions.is_empty() || !cfg.stream_fps.is_finite() || cfg.stream_fps <= 0.0 {
        return None;
    }

    let mut free_at = 0.0f64;
    let mut latencies = Vec::new();
    let mut busy = 0.0f64;
    let mut max_backlog = 0u64;
    let mut backlog_until: Vec<(f64, u64)> = Vec::new();
    let mut degraded = 0usize;
    let mut degraded_frames = 0u64;

    let _sim = tel.map(|t| t.span("ciq.simulate_resilient"));
    let first_arrival = submissions[0].arrival_frame as f64 / cfg.stream_fps;
    let mut last_finish = first_arrival;
    for sub in submissions {
        let arrival = sub.arrival_frame as f64 / cfg.stream_fps;
        backlog_until.retain(|&(finish, _)| finish > arrival);
        let backlog: u64 = backlog_until.iter().map(|&(_, f)| f).sum::<u64>() + sub.frames;
        max_backlog = max_backlog.max(backlog);
        if let Some(t) = tel {
            t.set_time(arrival);
            t.add("ciq.submissions", 1);
            t.add("ciq.frames", sub.frames);
            t.gauge_set("ciq.backlog_frames", backlog as f64);
        }

        match client.submit(sub.frames, arrival) {
            SubmissionOutcome::Delivered {
                wasted, service, ..
            } => {
                let effective_arrival = arrival + wasted;
                let start = free_at.max(effective_arrival);
                let finish = start + service;
                busy += service;
                let latency = finish - arrival;
                latencies.push(latency);
                backlog_until.push((finish, sub.frames));
                free_at = finish;
                last_finish = last_finish.max(finish);
                if let Some(t) = tel {
                    t.observe("ciq.latency_seconds", latency);
                }
            }
            SubmissionOutcome::Degraded { .. } => {
                degraded += 1;
                degraded_frames += sub.frames;
                // The frames linger as backlog until abandonment; model
                // them as pending for one inter-arrival period.
                backlog_until.push((arrival + client.config_deadline(), sub.frames));
                if let Some(t) = tel {
                    t.add("ciq.degraded", 1);
                }
            }
        }
    }
    if let Some(t) = tel {
        t.set_time(last_finish);
        t.add("ciq.completed", latencies.len() as u64);
    }

    if latencies.is_empty() {
        // Nothing was ever served: report an all-degraded run with an
        // empty queue profile rather than dividing by zero.
        return Some(ResilientQueueReport {
            queue: QueueReport::empty(max_backlog),
            degraded,
            degraded_frames,
            availability: 0.0,
        });
    }

    let n = latencies.len();
    let span = last_finish - first_arrival;
    Some(ResilientQueueReport {
        queue: QueueReport::from_latencies(&mut latencies, busy, span, max_backlog),
        degraded,
        degraded_frames,
        availability: n as f64 / (n + degraded) as f64,
    })
}

/// Builds submissions from marshalled relay segments: each segment is
/// submitted when its last frame has been captured. Inverted segments
/// (`end < start`) contribute zero frames instead of wrapping around.
pub fn submissions_from_segments(segments: &[(u64, u64)]) -> Vec<Submission> {
    let mut subs: Vec<Submission> = segments
        .iter()
        .map(|&(start, end)| Submission {
            arrival_frame: end,
            frames: (end + 1).saturating_sub(start),
        })
        .collect();
    subs.sort_by_key(|s| s.arrival_frame);
    subs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(stream_fps: f64, ci_fps: f64) -> QueueConfig {
        QueueConfig {
            stream_fps,
            ci: StageModel::new("ci", ci_fps),
        }
    }

    #[test]
    fn empty_submissions_yield_none() {
        assert!(simulate(&[], &QueueConfig::default()).is_none());
    }

    #[test]
    fn underloaded_queue_latency_is_service_time() {
        // One 80-frame request every 1000 frames (33 s) with 10 fps CI:
        // service = 8 s < inter-arrival, so no queueing.
        let subs: Vec<Submission> = (1..=10)
            .map(|i| Submission {
                arrival_frame: i * 1000,
                frames: 80,
            })
            .collect();
        let r = simulate(&subs, &cfg(30.0, 10.0)).unwrap();
        assert_eq!(r.completed, 10);
        assert!(
            (r.mean_latency - 8.0).abs() < 1e-9,
            "mean={}",
            r.mean_latency
        );
        assert!((r.max_latency - 8.0).abs() < 1e-9);
        assert!(r.utilization < 0.5);
        assert_eq!(r.max_backlog_frames, 80);
    }

    #[test]
    fn overloaded_queue_latency_grows() {
        // 300-frame requests every 300 frames (10 s) with CI 10 fps:
        // service = 30 s per request — queue grows linearly.
        let subs: Vec<Submission> = (1..=10)
            .map(|i| Submission {
                arrival_frame: i * 300,
                frames: 300,
            })
            .collect();
        let r = simulate(&subs, &cfg(30.0, 10.0)).unwrap();
        // Latencies ramp linearly (30, 50, …, 210 s): max ≈ 1.75× mean.
        assert!(r.max_latency > 1.5 * r.mean_latency, "latency should grow");
        assert!(r.utilization > 0.95);
        assert!(r.max_backlog_frames > 300);
        // Last request waits behind ~9 predecessors: ~(9*30 - 90) + 30 s.
        assert!(r.max_latency > 150.0, "max={}", r.max_latency);
    }

    #[test]
    fn latencies_are_fifo_ordered() {
        let subs = vec![
            Submission {
                arrival_frame: 0,
                frames: 100,
            },
            Submission {
                arrival_frame: 1,
                frames: 10,
            },
        ];
        let r = simulate(&subs, &cfg(30.0, 10.0)).unwrap();
        // Second request waits for the first: latency ≈ 10 + 1 ≈ 11 s.
        assert!(r.max_latency > 10.0);
    }

    #[test]
    fn submissions_from_segments_sorted_by_arrival() {
        let subs = submissions_from_segments(&[(50, 80), (10, 20)]);
        assert_eq!(
            subs[0],
            Submission {
                arrival_frame: 20,
                frames: 11
            }
        );
        assert_eq!(
            subs[1],
            Submission {
                arrival_frame: 80,
                frames: 31
            }
        );
    }

    #[test]
    fn lighter_relay_load_means_lower_latency() {
        // The marshalling argument in queue form: EHCR-style sparse relays
        // vs BF-style full-horizon relays at the same service rate.
        let bf: Vec<Submission> = (1..=20)
            .map(|i| Submission {
                arrival_frame: i * 500,
                frames: 500,
            })
            .collect();
        let ehcr: Vec<Submission> = (1..=20)
            .map(|i| Submission {
                arrival_frame: i * 500,
                frames: 100,
            })
            .collect();
        let c = cfg(30.0, 8.0);
        let r_bf = simulate(&bf, &c).unwrap();
        let r_ehcr = simulate(&ehcr, &c).unwrap();
        assert!(r_ehcr.mean_latency < r_bf.mean_latency / 2.0);
        assert!(r_ehcr.p95_latency < r_bf.p95_latency);
    }

    #[test]
    fn zero_frame_submissions_do_not_divide_by_zero() {
        // Regression: an all-zero burst at a single arrival frame used to
        // make the busy span zero; the report must stay finite.
        let subs = vec![
            Submission {
                arrival_frame: 100,
                frames: 0,
            };
            5
        ];
        let r = simulate(&subs, &cfg(30.0, 10.0)).unwrap();
        assert_eq!(r.completed, 5);
        assert_eq!(r.mean_latency, 0.0);
        assert!(r.utilization.is_finite() && r.utilization >= 0.0);
        assert_eq!(r.max_backlog_frames, 0);
    }

    #[test]
    fn dead_camera_yields_none_not_panic() {
        // Regression: stream_fps = 0 used to assert.
        let subs = vec![Submission {
            arrival_frame: 1,
            frames: 10,
        }];
        assert!(simulate(&subs, &cfg(0.0, 10.0)).is_none());
        assert!(simulate(&subs, &cfg(f64::NAN, 10.0)).is_none());
    }

    #[test]
    fn saturated_load_caps_utilization_at_one() {
        // Offered load far above the service rate: utilization must be
        // exactly 1 (never > 1 from the span guard) and backlog must be
        // non-negative (u64) and growing.
        let subs: Vec<Submission> = (0..50)
            .map(|i| Submission {
                arrival_frame: i, // one huge request per captured frame
                frames: 1000,
            })
            .collect();
        let r = simulate(&subs, &cfg(30.0, 1.0)).unwrap();
        assert!(r.utilization <= 1.0 && r.utilization > 0.999);
        assert!(r.max_backlog_frames >= 1000);
    }

    #[test]
    fn inverted_segments_become_zero_frames() {
        // Regression: (start > end) used to underflow u64.
        let subs = submissions_from_segments(&[(80, 50), (10, 20)]);
        assert_eq!(subs[1].frames, 0);
        assert_eq!(subs[0].frames, 11);
    }

    #[test]
    fn resilient_queue_reliable_channel_matches_plain_simulation() {
        use crate::faults::FaultConfig;
        use crate::resilient::{ResilienceConfig, ResilientCiClient};
        let subs: Vec<Submission> = (1..=10)
            .map(|i| Submission {
                arrival_frame: i * 1000,
                frames: 80,
            })
            .collect();
        let c = cfg(30.0, 10.0);
        let plain = simulate(&subs, &c).unwrap();
        let mut client = ResilientCiClient::new(
            FaultConfig::reliable(),
            ResilienceConfig::default(),
            c.ci.clone(),
            1,
        )
        .unwrap();
        let res = simulate_resilient(&subs, &c, &mut client).unwrap();
        assert_eq!(res.availability, 1.0);
        assert_eq!(res.degraded, 0);
        assert_eq!(res.queue, plain, "no faults => identical queue profile");
    }

    #[test]
    fn outages_grow_backlog_and_cut_availability() {
        use crate::faults::FaultConfig;
        use crate::resilient::{ResilienceConfig, ResilientCiClient};
        let subs: Vec<Submission> = (1..=60)
            .map(|i| Submission {
                arrival_frame: i * 600,
                frames: 100,
            })
            .collect();
        let c = cfg(30.0, 10.0);
        let clean = simulate(&subs, &c).unwrap();
        let faults = FaultConfig {
            p_good_to_bad: 0.15,
            p_bad_to_good: 0.25,
            bad_loss: 1.0,
            transient_prob: 0.1,
            ..FaultConfig::reliable()
        };
        let mut client =
            ResilientCiClient::new(faults, ResilienceConfig::default(), c.ci.clone(), 5).unwrap();
        let res = simulate_resilient(&subs, &c, &mut client).unwrap();
        assert!(res.availability < 1.0, "outages must cost availability");
        assert!(res.degraded > 0);
        assert!(
            res.queue.max_backlog_frames >= clean.max_backlog_frames,
            "outages cannot shrink the backlog: {} vs {}",
            res.queue.max_backlog_frames,
            clean.max_backlog_frames
        );
        assert_eq!(res.queue.completed + res.degraded, subs.len());
    }

    #[test]
    fn fully_dead_service_reports_zero_availability() {
        use crate::faults::FaultConfig;
        use crate::resilient::{ResilienceConfig, ResilientCiClient};
        let subs: Vec<Submission> = (1..=5)
            .map(|i| Submission {
                arrival_frame: i * 100,
                frames: 10,
            })
            .collect();
        let c = cfg(30.0, 10.0);
        let faults = FaultConfig {
            p_good_to_bad: 1.0,
            p_bad_to_good: 0.0,
            bad_loss: 1.0,
            ..FaultConfig::reliable()
        };
        let mut client =
            ResilientCiClient::new(faults, ResilienceConfig::default(), c.ci.clone(), 2).unwrap();
        let res = simulate_resilient(&subs, &c, &mut client).unwrap();
        assert_eq!(res.availability, 0.0);
        assert_eq!(res.queue.completed, 0);
        assert_eq!(res.degraded, 5);
        assert!(res.queue.mean_latency == 0.0 && res.queue.utilization == 0.0);
    }

    #[test]
    fn percentiles_are_consistent() {
        let subs: Vec<Submission> = (0..100)
            .map(|i| Submission {
                arrival_frame: i * 100,
                frames: 50,
            })
            .collect();
        let r = simulate(&subs, &cfg(30.0, 20.0)).unwrap();
        assert!(r.p50_latency <= r.mean_latency + 1e-12 || r.p50_latency <= r.p95_latency);
        assert!(r.mean_latency <= r.p95_latency + 1e-12);
        assert!(r.p95_latency <= r.p99_latency + 1e-12);
        assert!(r.p99_latency <= r.max_latency + 1e-12);
    }

    #[test]
    fn instrumented_simulation_records_queue_metrics() {
        use eventhit_telemetry::Telemetry;
        let subs: Vec<Submission> = (1..=10)
            .map(|i| Submission {
                arrival_frame: i * 1000,
                frames: 80,
            })
            .collect();
        let c = cfg(30.0, 10.0);
        let tel = Telemetry::with_manual_clock();
        let instrumented = simulate_instrumented(&subs, &c, Some(&tel)).unwrap();
        assert_eq!(instrumented, simulate(&subs, &c).unwrap());
        let snap = tel.snapshot();
        assert_eq!(snap.counter("ciq.submissions"), Some(10));
        assert_eq!(snap.counter("ciq.completed"), Some(10));
        assert_eq!(snap.counter("ciq.frames"), Some(800));
        let h = snap.histogram("ciq.latency_seconds").unwrap();
        assert_eq!(h.count(), 10);
        // Underloaded queue: every latency is the 8 s service time, and
        // clamped bucket midpoints make the quantile exact.
        assert_eq!(h.quantile(0.5), Some(8.0));
        let depth = snap.gauge("ciq.backlog_frames").unwrap();
        assert_eq!(depth.max, 80.0);
        // The simulator drove the manual clock to the last finish time.
        assert!(tel.now() > 300.0);
    }
}
