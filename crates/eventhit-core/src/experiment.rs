//! End-to-end task execution: generate a synthetic stream for a task,
//! extract features, build splits, train EventHit, fit the conformal state,
//! and score the calibration and test splits — after which any number of
//! strategy/parameter sweeps can be evaluated without re-training.

use std::time::Instant;

use eventhit_nn::matrix::Matrix;
use eventhit_nn::quant::InferenceLane;
use eventhit_parallel::Pool;
use eventhit_video::dataset::{Dataset, SplitSpec};
use eventhit_video::features::{extract, FeatureConfig};
use eventhit_video::normalize::Standardizer;
use eventhit_video::records::{EventLabel, Record};
use eventhit_video::stream::VideoStream;
use eventhit_video::synthetic::DatasetProfile;

use crate::ci::{CiConfig, CostReport};
use crate::error::{CoreError, CoreResult};
use crate::infer::{score_records, score_records_lane, IntervalPrediction, ScoredRecord};
use crate::metrics::{evaluate, EvalOutcome};
use crate::model::{EncoderKind, EventHit, EventHitConfig};
use crate::pipeline::{ConformalState, Strategy};
use crate::sampling::SamplingPolicy;
use crate::tasks::Task;
use crate::train::{train, TrainConfig, TrainReport};

/// Everything needed to run one task once.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Dataset scale factor (1.0 = the reference stream lengths of
    /// DESIGN.md; smaller = proportionally shorter streams with the same
    /// event density).
    pub scale: f64,
    /// Master seed; stream, features, model init, and training shuffle
    /// derive distinct sub-seeds from it.
    pub seed: u64,
    /// Split fractions and anchor stride.
    pub split: SplitSpec,
    /// Training hyper-parameters.
    pub train: TrainConfig,
    /// Occurrence-interval threshold `τ_2` (Eq. 5), paper default 0.5.
    pub tau2: f32,
    /// Override the dataset's collection-window size `M`.
    pub override_window: Option<usize>,
    /// Override the dataset's horizon length `H`.
    pub override_horizon: Option<usize>,
    /// Feature-generator knobs.
    pub features: FeatureConfig,
    /// LSTM hidden size.
    pub hidden_dim: usize,
    /// Latent `z` dimension.
    pub shared_dim: usize,
    /// Dropout probability.
    pub dropout: f32,
    /// Recurrent encoder (LSTM per the paper; GRU for the ablation).
    pub encoder: EncoderKind,
    /// Multiplier on per-class occurrence counts at fixed stream length
    /// (1.0 = Table I density). Used by the footnote-1 experiment to create
    /// horizons containing several instances.
    pub occurrence_boost: f64,
    /// Standardize covariates (z-score per channel, statistics fitted on
    /// the training split only). Off by default — the synthetic channels
    /// are already ~unit scale; enable for user detectors with mixed
    /// scales.
    pub standardize: bool,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            scale: 0.5,
            seed: 1,
            split: SplitSpec::default(),
            train: TrainConfig::default(),
            tau2: 0.5,
            override_window: None,
            override_horizon: None,
            features: FeatureConfig::default(),
            hidden_dim: 48,
            shared_dim: 32,
            dropout: 0.2,
            encoder: EncoderKind::Lstm,
            occurrence_boost: 1.0,
            standardize: false,
        }
    }
}

impl ExperimentConfig {
    /// A down-scaled configuration for fast tests: tiny stream, small
    /// model, few epochs.
    pub fn quick(seed: u64) -> Self {
        ExperimentConfig {
            scale: 0.06,
            seed,
            split: SplitSpec {
                train_frac: 0.5,
                calib_frac: 0.25,
                stride: 25,
            },
            train: TrainConfig {
                epochs: 6,
                batch_size: 32,
                ..Default::default()
            },
            hidden_dim: 16,
            shared_dim: 12,
            dropout: 0.1,
            ..Default::default()
        }
    }
}

/// The result of executing a task once: the trained model, fitted conformal
/// state, and scored splits.
pub struct TaskRun {
    /// The task that was executed.
    pub task: Task,
    /// The per-task dataset profile (possibly scaled / overridden).
    pub profile: DatasetProfile,
    /// The generated stream (kept for oracle baselines).
    pub stream: VideoStream,
    /// The full frame-feature matrix (kept for the VQS baseline).
    pub features: Matrix,
    /// Collection-window size used.
    pub window: usize,
    /// Horizon length used.
    pub horizon: usize,
    /// The trained model.
    pub model: EventHit,
    /// Fitted conformal calibration state.
    pub state: ConformalState,
    /// Raw training records (kept for baselines that fit their own model,
    /// e.g. COX and the point-process predictor).
    pub train_records: Vec<Record>,
    /// Raw calibration records (kept for the COX baseline's covariates).
    pub calib_records: Vec<Record>,
    /// Raw test records.
    pub test_records: Vec<Record>,
    /// Scored calibration split.
    pub calib: Vec<ScoredRecord>,
    /// Scored test split.
    pub test: Vec<ScoredRecord>,
    /// Training summary.
    pub train_report: TrainReport,
    /// Measured EventHit inference seconds per record (for the FPS model).
    pub predictor_seconds_per_record: f64,
}

impl TaskRun {
    /// Executes a task under `cfg`: generate → extract → split → train →
    /// calibrate → score.
    pub fn execute(task: &Task, cfg: &ExperimentConfig) -> TaskRun {
        Self::try_execute(task, cfg).unwrap_or_else(|e| panic!("task execution failed: {e}"))
    }

    /// Fallible [`TaskRun::execute`]: invalid configuration (non-positive
    /// occurrence boost, non-finite or non-positive scale) and splits left
    /// empty by an over-aggressive scale come back as typed errors instead
    /// of panics.
    pub fn try_execute(task: &Task, cfg: &ExperimentConfig) -> CoreResult<TaskRun> {
        if !(cfg.occurrence_boost > 0.0 && cfg.occurrence_boost.is_finite()) {
            return Err(CoreError::InvalidConfig(format!(
                "occurrence boost must be positive and finite, got {}",
                cfg.occurrence_boost
            )));
        }
        if !(cfg.scale > 0.0 && cfg.scale.is_finite()) {
            return Err(CoreError::InvalidConfig(format!(
                "scale must be positive and finite, got {}",
                cfg.scale
            )));
        }
        let mut profile = task.profile().scaled(cfg.scale);
        if cfg.occurrence_boost != 1.0 {
            for class in &mut profile.classes {
                class.occurrences =
                    ((class.occurrences as f64 * cfg.occurrence_boost).round() as u32).max(1);
            }
        }
        let window = cfg.override_window.unwrap_or(profile.collection_window);
        let horizon = cfg.override_horizon.unwrap_or(profile.horizon);

        let stream = VideoStream::generate(&profile, cfg.seed.wrapping_mul(31).wrapping_add(1));
        let features = extract(
            &stream,
            &cfg.features,
            cfg.seed.wrapping_mul(37).wrapping_add(2),
        );
        let mut dataset = Dataset::build(&stream, &features, window, horizon, &cfg.split);
        if cfg.standardize {
            let scaler = Standardizer::fit(&dataset.train);
            dataset.train = scaler.transform(&dataset.train);
            dataset.calib = scaler.transform(&dataset.calib);
            dataset.test = scaler.transform(&dataset.test);
        }
        if dataset.train.is_empty() || dataset.calib.is_empty() || dataset.test.is_empty() {
            return Err(CoreError::EmptySplit {
                task: task.id.to_string(),
            });
        }

        let model_cfg = EventHitConfig {
            input_dim: dataset.d,
            window,
            horizon,
            num_events: task.num_events(),
            hidden_dim: cfg.hidden_dim,
            shared_dim: cfg.shared_dim,
            dropout: cfg.dropout,
        };
        let mut model = EventHit::with_encoder(
            model_cfg,
            cfg.encoder,
            cfg.seed.wrapping_mul(41).wrapping_add(3),
        );
        let mut train_cfg = cfg.train.clone();
        train_cfg.seed = cfg.seed.wrapping_mul(43).wrapping_add(4);
        let train_report = train(&mut model, &dataset.train, &train_cfg);

        let calib = score_records(&model, &dataset.calib, 128);
        let t0 = Instant::now();
        let test = score_records(&model, &dataset.test, 128);
        let predictor_seconds_per_record =
            t0.elapsed().as_secs_f64() / dataset.test.len().max(1) as f64;

        let state = ConformalState::try_fit(&calib, task.num_events(), cfg.tau2, horizon)?;

        Ok(TaskRun {
            task: task.clone(),
            profile,
            stream,
            features,
            window,
            horizon,
            model,
            state,
            train_records: dataset.train,
            calib_records: dataset.calib,
            test_records: dataset.test,
            calib,
            test,
            train_report,
            predictor_seconds_per_record,
        })
    }

    /// A conformal state matched to an inference lane.
    ///
    /// `Exact` returns a clone of the state fitted by
    /// [`TaskRun::execute`]. `Quantized` re-scores the calibration split
    /// on the int8 fast lane and refits — the nonconformity quantiles are
    /// then computed from the *same* score distribution the deployed lane
    /// produces, so the split-conformal coverage guarantee holds on the
    /// quantized scores exactly as it does on the exact ones (quantization
    /// error is absorbed into the calibrated quantiles, not assumed away).
    pub fn state_for_lane(&self, lane: InferenceLane) -> ConformalState {
        match lane {
            InferenceLane::Exact => self.state.clone(),
            InferenceLane::Quantized => self.state_for_model(&self.model, lane),
        }
    }

    /// Refits the conformal state for an arbitrary model on `lane` by
    /// rescoring this run's calibration split — the hot-reload path:
    /// swapping served weights without refitting their conformal state
    /// would void the coverage guarantees, exactly as pairing a loaded
    /// model with another model's state would (see the CLI's `serve
    /// --model`). Unlike [`TaskRun::state_for_lane`], this always
    /// rescores, even on the exact lane, because the given model's scores
    /// need not match the run's own.
    pub fn state_for_model(&self, model: &EventHit, lane: InferenceLane) -> ConformalState {
        let calib = score_records_lane(model, &self.calib_records, 128, lane);
        ConformalState::fit(
            &calib,
            self.task.num_events(),
            self.state.tau2(),
            self.horizon,
        )
    }

    /// A conformal state matched to a [`SamplingPolicy`] on `lane`: the
    /// calibration split is rescored on *gated trajectories* — each
    /// calibration record's window replaced by the window a deployed
    /// gated predictor would see at that anchor (simulated by
    /// [`sampled_records`](crate::sampling::sampled_records) with the
    /// exact online state machine) — and the state refitted. The
    /// nonconformity quantiles then come from the same score
    /// distribution the gated lane produces, so split-conformal coverage
    /// transfers to gated serving exactly as
    /// [`TaskRun::state_for_lane`] transfers it to the int8 lane.
    /// `Fixed` delegates to [`TaskRun::state_for_lane`] unchanged.
    pub fn state_for_sampling(
        &self,
        policy: &SamplingPolicy,
        lane: InferenceLane,
    ) -> ConformalState {
        if policy.is_fixed() {
            return self.state_for_lane(lane);
        }
        let calib = self.sampled_split(&self.calib_records, policy, lane);
        ConformalState::fit(
            &calib,
            self.task.num_events(),
            self.state.tau2(),
            self.horizon,
        )
    }

    /// The test split scored on gated trajectories under `policy` — the
    /// counterpart of [`TaskRun::state_for_sampling`] for evaluating
    /// REC/SPL and conformal coverage under a sampling policy. `Fixed`
    /// reproduces the plain lane scores.
    pub fn sampled_test(&self, policy: &SamplingPolicy, lane: InferenceLane) -> Vec<ScoredRecord> {
        self.sampled_split(&self.test_records, policy, lane)
    }

    /// Rebuilds a split's records with their gated windows and scores
    /// them, batching maximal runs of equal window lengths.
    fn sampled_split(
        &self,
        records: &[Record],
        policy: &SamplingPolicy,
        lane: InferenceLane,
    ) -> Vec<ScoredRecord> {
        let gated =
            crate::sampling::sampled_records(&self.model, &self.features, records, policy, lane);
        crate::sampling::score_sampled_records(&self.model, &gated, 128, lane)
    }

    /// Predictions of a strategy over the test split.
    pub fn predictions(&self, strategy: &Strategy) -> Vec<Vec<IntervalPrediction>> {
        self.test
            .iter()
            .map(|r| self.state.predict(r, strategy))
            .collect()
    }

    /// Evaluates a strategy over the test split.
    pub fn evaluate(&self, strategy: &Strategy) -> EvalOutcome {
        evaluate(&self.predictions(strategy), &self.test, self.horizon as u32)
    }

    /// Evaluates many strategies (sweeps share the scored records), one
    /// grid cell per task on the ambient [`Pool::current`].
    pub fn sweep(&self, strategies: &[Strategy]) -> Vec<(Strategy, EvalOutcome)> {
        self.sweep_with(strategies, &Pool::current())
    }

    /// [`TaskRun::sweep`] on an explicit [`Pool`]. Each cell is a pure
    /// function of the already-scored splits, so the grid evaluates in
    /// parallel with bit-identical results, returned in grid order.
    pub fn sweep_with(&self, strategies: &[Strategy], pool: &Pool) -> Vec<(Strategy, EvalOutcome)> {
        pool.map_chunked(strategies.len(), 1, |i| {
            (strategies[i], self.evaluate(&strategies[i]))
        })
    }

    /// The OPT oracle: relays exactly the true occurrence intervals.
    pub fn oracle_outcome(&self) -> EvalOutcome {
        let preds: Vec<Vec<IntervalPrediction>> = self
            .test
            .iter()
            .map(|r| r.labels.iter().map(label_as_prediction).collect())
            .collect();
        evaluate(&preds, &self.test, self.horizon as u32)
    }

    /// The BF baseline: relays every frame of every horizon.
    pub fn brute_force_outcome(&self) -> EvalOutcome {
        let all = IntervalPrediction {
            present: true,
            start: 1,
            end: self.horizon as u32,
        };
        let preds: Vec<Vec<IntervalPrediction>> = self
            .test
            .iter()
            .map(|r| vec![all; r.labels.len()])
            .collect();
        evaluate(&preds, &self.test, self.horizon as u32)
    }

    /// Converts an evaluation into a cost report under a CI model, using
    /// the measured predictor time.
    pub fn cost(&self, outcome: &EvalOutcome, ci: &CiConfig) -> CostReport {
        ci.account(
            outcome.records,
            self.window,
            self.horizon,
            outcome.frames_relayed,
            self.predictor_seconds_per_record * outcome.records as f64,
        )
    }
}

/// Represents a ground-truth label as the ideal prediction (used by OPT).
pub fn label_as_prediction(label: &EventLabel) -> IntervalPrediction {
    if label.present {
        IntervalPrediction {
            present: true,
            start: label.start,
            end: label.end,
        }
    } else {
        IntervalPrediction::absent()
    }
}

/// The standard sweep grids used throughout the evaluation section.
pub mod grids {
    use super::Strategy;

    /// Confidence levels swept for C-CLASSIFY curves.
    pub fn confidence_levels() -> Vec<f64> {
        vec![0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.98, 0.99, 0.995, 0.999]
    }

    /// Coverage levels swept for C-REGRESS curves.
    pub fn coverage_levels() -> Vec<f64> {
        vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99]
    }

    /// The EHC curve: sweep `c`.
    pub fn ehc() -> Vec<Strategy> {
        confidence_levels()
            .into_iter()
            .map(|c| Strategy::Ehc { c })
            .collect()
    }

    /// The EHR curve: sweep `α` at `τ_1 = 0.5`.
    pub fn ehr() -> Vec<Strategy> {
        coverage_levels()
            .into_iter()
            .map(|alpha| Strategy::Ehr { tau1: 0.5, alpha })
            .collect()
    }

    /// The EHCR curve: sweep `(c, α)` jointly, including the max-recall
    /// corner (`c, α → 1`) where EHCR reaches any required REC (§VI.D).
    pub fn ehcr() -> Vec<Strategy> {
        let mut out = Vec::new();
        for c in confidence_levels() {
            for alpha in [0.3, 0.6, 0.9, 0.99] {
                out.push(Strategy::Ehcr { c, alpha });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::task;

    fn quick_run() -> TaskRun {
        // THUMOS tasks are the cheapest (H=200, M=10).
        TaskRun::execute(&task("TA10").unwrap(), &ExperimentConfig::quick(3))
    }

    #[test]
    fn execute_produces_consistent_shapes() {
        let run = quick_run();
        assert_eq!(run.calib.len(), run.calib_records.len());
        assert_eq!(run.test.len(), run.test_records.len());
        assert!(!run.test.is_empty());
        assert_eq!(run.state.num_events(), 1);
        assert!(run.predictor_seconds_per_record >= 0.0);
        assert!(run.train_report.final_loss.is_finite());
    }

    #[test]
    fn oracle_is_perfect_and_brute_force_is_exhaustive() {
        let run = quick_run();
        let opt = run.oracle_outcome();
        assert_eq!(opt.rec, 1.0);
        assert_eq!(opt.spl, 0.0);
        let bf = run.brute_force_outcome();
        assert_eq!(bf.rec, 1.0);
        assert_eq!(bf.spl, 1.0);
        assert!(bf.frames_relayed > opt.frames_relayed);
    }

    #[test]
    fn training_actually_reduces_loss() {
        let run = quick_run();
        let losses = &run.train_report.epoch_losses;
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "losses: {losses:?}"
        );
    }

    #[test]
    fn ehcr_recall_dominates_eho() {
        let run = quick_run();
        let eho = run.evaluate(&Strategy::Eho { tau1: 0.5 });
        let ehcr = run.evaluate(&Strategy::Ehcr {
            c: 0.99,
            alpha: 0.9,
        });
        assert!(
            ehcr.rec >= eho.rec,
            "EHCR at high (c, alpha) must reach at least EHO recall: {} vs {}",
            ehcr.rec,
            eho.rec
        );
    }

    #[test]
    fn cost_report_uses_measured_predictor_time() {
        let run = quick_run();
        let outcome = run.evaluate(&Strategy::Eho { tau1: 0.5 });
        let report = run.cost(&outcome, &CiConfig::default());
        assert_eq!(report.frames_relayed, outcome.frames_relayed);
        assert!(report.total_seconds() > 0.0);
    }

    #[test]
    fn standardized_run_still_learns() {
        let cfg = ExperimentConfig {
            standardize: true,
            ..ExperimentConfig::quick(8)
        };
        let run = TaskRun::execute(&task("TA10").unwrap(), &cfg);
        let o = run.evaluate(&Strategy::Ehcr {
            c: 0.95,
            alpha: 0.9,
        });
        // The standardized pipeline must remain functional (recall above
        // chance given the permissive strategy).
        assert!(o.rec > 0.3 || o.positives == 0, "rec={}", o.rec);
    }

    #[test]
    fn try_execute_rejects_bad_configs_as_values() {
        use crate::error::CoreError;
        let t = task("TA10").unwrap();

        let bad_boost = ExperimentConfig {
            occurrence_boost: -1.0,
            ..ExperimentConfig::quick(1)
        };
        assert!(matches!(
            TaskRun::try_execute(&t, &bad_boost).err(),
            Some(CoreError::InvalidConfig(_))
        ));

        let bad_scale = ExperimentConfig {
            scale: 0.0,
            ..ExperimentConfig::quick(1)
        };
        assert!(matches!(
            TaskRun::try_execute(&t, &bad_scale).err(),
            Some(CoreError::InvalidConfig(_))
        ));

        // A scale so small no test anchors survive the stride collapses a
        // split; that must surface as EmptySplit, not a panic.
        let tiny = ExperimentConfig {
            scale: 0.001,
            ..ExperimentConfig::quick(1)
        };
        match TaskRun::try_execute(&t, &tiny) {
            Err(CoreError::EmptySplit { task }) => assert_eq!(task, "TA10"),
            Err(e) => panic!("expected EmptySplit, got {e}"),
            Ok(_) => panic!("expected EmptySplit, got a successful run"),
        }
    }

    #[test]
    fn grids_are_sorted_and_in_range() {
        for c in grids::confidence_levels() {
            assert!((0.0..1.0).contains(&c));
        }
        for a in grids::coverage_levels() {
            assert!((0.0..1.0).contains(&a));
        }
        assert!(!grids::ehc().is_empty());
        assert!(!grids::ehr().is_empty());
        assert!(!grids::ehcr().is_empty());
    }
}
