//! Content-adaptive frame sampling and query-aware windowing.
//!
//! Every stream used to be encoded frame-by-frame at a fixed cadence.
//! This module adds the two measurement-driven levers from the
//! RedunCut / Opinfer / VID-WIN line of work (see `PAPERS.md`):
//!
//! - a **feature-delta gate** in front of the encoder: a frame whose
//!   covariates barely moved relative to the last *accepted* frame is
//!   acknowledged but not pushed into the collection window (the window
//!   keeps carrying the previous content — "duplicate-carry"). A
//!   deterministic hysteresis band keeps near-threshold streams from
//!   oscillating, and an optional `max_run` bound force-refreshes the
//!   reference after too many consecutive skips. A second,
//!   window-level drift test drives the **anchor-level carry**: a
//!   decision anchor whose candidate window's per-dimension means moved
//!   less than the threshold from the last *scored* anchor's window
//!   ([`window_drift`]) reuses that anchor's scores and predictions
//!   without running the encoder at all, up to `max_carry` consecutive
//!   anchors — this is where the frames/sec win comes from, because the
//!   encoder forward dominates a lane's per-frame cost. Averaging over
//!   the window rows suppresses per-frame noise by `~sqrt(m)` while a
//!   sustained event shift moves the mean almost one-for-one, so
//!   carries survive static stretches but break when event content
//!   enters the window.
//! - a **query-aware collection window**: the number of window rows the
//!   encoder actually consumes per anchor, `m`, shrinks toward `m_min`
//!   while the stream is quiet and grows back toward `m_max` when events
//!   fire, driven by an EMA of the raw existence-score hit rate.
//!
//! Both levers are pure functions of the frame sequence and the policy
//! parameters — no clocks, no randomness — so decisions stay
//! bit-reproducible per seed and across worker counts (the property
//! every other layer of this workspace is built on). The anchor cadence
//! is *identical* under every policy: gated frames still advance the
//! stream position, so a gated lane emits decisions at exactly the
//! frames a `Fixed` lane would — only the window content (and hence the
//! scores) differs.
//!
//! Conformal validity transfers by recalibration, exactly as for the
//! int8 lane: [`TaskRun::state_for_sampling`](crate::experiment::TaskRun::state_for_sampling)
//! rescores the calibration split on *gated* trajectories (simulated by
//! [`sampled_records`]) and refits, so the nonconformity quantiles come
//! from the same score distribution the deployed gated lane produces.
//! The model and worked numbers live in `docs/SAMPLING.md`.

use eventhit_nn::matrix::Matrix;
use eventhit_nn::quant::InferenceLane;
use eventhit_video::online::WindowBuffer;
use eventhit_video::records::{EventLabel, Record};

use crate::infer::{score_records_lane, ScoredRecord};
use crate::model::EventHit;

/// Raw-score existence threshold used for the window-adaptation hit
/// indicator (`hit = max_k b_k >= HIT_TAU1`). Deliberately taken from
/// the *raw* model scores, not the conformal decision, so the `m`
/// trajectory never depends on the conformal state — which is what
/// keeps gated calibration non-circular.
pub const HIT_TAU1: f64 = 0.5;

/// Parameters of the feature-delta gate.
#[derive(Debug, Clone, PartialEq)]
pub struct GateParams {
    /// Mean-absolute-delta threshold below which a frame is gated
    /// (skipped). Features here are ~unit scale; see `docs/SAMPLING.md`
    /// for how to pick this for your detector.
    pub threshold: f32,
    /// Hysteresis exit multiplier (`>= 1`). While the gate is closed
    /// (skipping), a frame must move by at least
    /// `threshold * hysteresis` to re-open it — the band that keeps
    /// near-threshold streams from oscillating.
    pub hysteresis: f32,
    /// Force-accept after this many consecutive skips (`0` = unbounded).
    /// Bounds how stale the *window content* can get.
    pub max_run: u32,
    /// Largest run of consecutive *carried anchors*: an anchor whose
    /// candidate window drifted less than `threshold` from the last
    /// scored anchor's window (per-dimension window means, see
    /// [`window_drift`]) reuses that anchor's scores and predictions
    /// outright (duplicate-carry), skipping the encoder forward
    /// entirely. After `max_carry` consecutive carries the next anchor
    /// is force-scored, bounding decision staleness to `max_carry`
    /// horizons. `0` disables carrying (every anchor is scored).
    pub max_carry: u32,
}

impl Default for GateParams {
    fn default() -> Self {
        GateParams {
            threshold: 0.1,
            hysteresis: 1.25,
            max_run: 64,
            max_carry: 4,
        }
    }
}

impl GateParams {
    /// Whether an anchor whose candidate window drifted by `drift`
    /// (per-dimension window means, see [`window_drift`]) from the last
    /// *scored* anchor's window may carry that anchor's scores, given
    /// `run` anchors have already been carried consecutively.
    pub fn carries(&self, drift: f32, run: u32) -> bool {
        self.max_carry > 0 && run < self.max_carry && drift < self.threshold
    }
}

/// Parameters of the adaptive collection window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowParams {
    /// Smallest window the encoder consumes per anchor (`>= 1`).
    pub m_min: usize,
    /// Largest window (`0` resolves to the model's configured `M` when
    /// the policy is attached to a predictor).
    pub m_max: usize,
    /// EMA smoothing factor in `(0, 1]` for the hit-rate estimate
    /// (`ema = (1 - beta) * ema + beta * hit`, updated once per anchor).
    pub beta: f64,
}

impl Default for WindowParams {
    fn default() -> Self {
        WindowParams {
            m_min: 4,
            m_max: 0,
            beta: 0.2,
        }
    }
}

/// Per-stream sampling policy: how frames are admitted into the
/// collection window and how many window rows the encoder consumes.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum SamplingPolicy {
    /// Every frame is encoded, full `M`-row windows — the historical
    /// behaviour, bit-identical to builds without this module.
    #[default]
    Fixed,
    /// Feature-delta gating with a fixed `M`-row window.
    DeltaGate(GateParams),
    /// Feature-delta gating plus the query-aware window: `m` adapts in
    /// `[m_min, m_max]` from the EMA of the raw hit rate.
    Adaptive {
        /// The gate in front of the encoder.
        gate: GateParams,
        /// The window-adaptation law.
        window: WindowParams,
    },
}

impl SamplingPolicy {
    /// True for the [`SamplingPolicy::Fixed`] policy.
    pub fn is_fixed(&self) -> bool {
        matches!(self, SamplingPolicy::Fixed)
    }

    /// The gate parameters, when the policy gates at all.
    pub fn gate(&self) -> Option<&GateParams> {
        match self {
            SamplingPolicy::Fixed => None,
            SamplingPolicy::DeltaGate(g) => Some(g),
            SamplingPolicy::Adaptive { gate, .. } => Some(gate),
        }
    }

    /// Parses a CLI policy spec:
    ///
    /// - `fixed`
    /// - `delta:THRESHOLD[:HYSTERESIS[:MAX_RUN[:MAX_CARRY]]]`
    /// - `adaptive:THRESHOLD:M_MIN[:M_MAX[:BETA]]` (`M_MAX` `0` = model `M`)
    ///
    /// Omitted fields take the [`GateParams`] / [`WindowParams`]
    /// defaults. Returns a human-readable message on malformed specs.
    pub fn parse(spec: &str) -> Result<SamplingPolicy, String> {
        let mut parts = spec.split(':');
        let kind = parts.next().unwrap_or("");
        let fields: Vec<&str> = parts.collect();
        let num = |s: &str, what: &str| -> Result<f64, String> {
            s.parse::<f64>()
                .map_err(|_| format!("bad {what} {s:?} in sampling spec {spec:?}"))
        };
        match kind {
            "fixed" if fields.is_empty() => Ok(SamplingPolicy::Fixed),
            "fixed" => Err(format!("fixed takes no parameters, got {spec:?}")),
            "delta" | "adaptive" => {
                if fields.is_empty() {
                    return Err(format!("{kind} needs a threshold, e.g. {kind}:0.1"));
                }
                let mut gate = GateParams {
                    threshold: num(fields[0], "threshold")? as f32,
                    ..GateParams::default()
                };
                if !(gate.threshold >= 0.0 && gate.threshold.is_finite()) {
                    return Err(format!("threshold must be finite and >= 0 in {spec:?}"));
                }
                if kind == "delta" {
                    if let Some(h) = fields.get(1) {
                        gate.hysteresis = num(h, "hysteresis")? as f32;
                    }
                    if let Some(r) = fields.get(2) {
                        gate.max_run = num(r, "max_run")? as u32;
                    }
                    if let Some(c) = fields.get(3) {
                        gate.max_carry = num(c, "max_carry")? as u32;
                    }
                    if fields.len() > 4 {
                        return Err(format!("too many fields in {spec:?}"));
                    }
                    if !(gate.hysteresis >= 1.0 && gate.hysteresis.is_finite()) {
                        return Err(format!("hysteresis must be >= 1 in {spec:?}"));
                    }
                    Ok(SamplingPolicy::DeltaGate(gate))
                } else {
                    if fields.len() < 2 {
                        return Err(
                            "adaptive needs threshold and m_min, e.g. adaptive:0.1:4".to_string()
                        );
                    }
                    let mut window = WindowParams {
                        m_min: num(fields[1], "m_min")? as usize,
                        ..WindowParams::default()
                    };
                    if let Some(m) = fields.get(2) {
                        window.m_max = num(m, "m_max")? as usize;
                    }
                    if let Some(b) = fields.get(3) {
                        window.beta = num(b, "beta")?;
                    }
                    if fields.len() > 4 {
                        return Err(format!("too many fields in {spec:?}"));
                    }
                    if window.m_min == 0 {
                        return Err(format!("m_min must be >= 1 in {spec:?}"));
                    }
                    if !(window.beta > 0.0 && window.beta <= 1.0) {
                        return Err(format!("beta must be in (0, 1] in {spec:?}"));
                    }
                    Ok(SamplingPolicy::Adaptive { gate, window })
                }
            }
            _ => Err(format!(
                "unknown sampling policy {spec:?} \
                 (expected fixed | delta:… | adaptive:…)"
            )),
        }
    }

    /// A short stable label for telemetry, TSV columns, and logs
    /// (`fixed`, `delta@0.1`, `adaptive@0.1/4-10`).
    pub fn label(&self) -> String {
        match self {
            SamplingPolicy::Fixed => "fixed".into(),
            SamplingPolicy::DeltaGate(g) => format!("delta@{}", g.threshold),
            SamplingPolicy::Adaptive { gate, window } => {
                format!(
                    "adaptive@{}/{}-{}",
                    gate.threshold,
                    window.m_min,
                    if window.m_max == 0 {
                        "M".into()
                    } else {
                        window.m_max.to_string()
                    }
                )
            }
        }
    }
}

/// Mean absolute per-dimension difference between two feature vectors —
/// the gate's motion proxy. `0` for identical frames; features in this
/// workspace are ~unit scale, so deltas land in roughly `[0, 1]`.
pub fn mean_abs_delta(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    if a.is_empty() {
        return 0.0;
    }
    let sum: f32 = a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum();
    sum / a.len() as f32
}

/// Mean absolute difference between the per-dimension *window means* of
/// two covariate windows — the anchor-level carry's drift metric.
/// Averaging the `m` window rows first suppresses zero-mean per-frame
/// noise by roughly `sqrt(m)` while a sustained content shift moves the
/// mean almost one-for-one, which is exactly the separation the carry
/// needs: static-but-noisy windows read near zero, windows that event
/// content has entered read near the event amplitude. Windows of
/// different shapes never carry (`f32::INFINITY`). Costs `2·m·d` adds
/// per call — noise against the ~50 µs encoder forward it can elide.
pub fn window_drift(a: &Matrix, b: &Matrix) -> f32 {
    let (m, d) = (a.rows(), a.cols());
    if m != b.rows() || d != b.cols() || m == 0 || d == 0 {
        return f32::INFINITY;
    }
    let mut sums = vec![0.0f32; d];
    for r in 0..m {
        for (s, (x, y)) in sums.iter_mut().zip(a.row(r).iter().zip(b.row(r))) {
            *s += x - y;
        }
    }
    let total: f32 = sums.iter().map(|s| s.abs()).sum();
    total / (m * d) as f32
}

/// The per-stream sampling state machine: gate state, skip-run length,
/// the last accepted reference frame, and the adaptive window length.
/// Deterministic by construction — every transition is a pure function
/// of the pushed frames and the policy parameters. One lives inside
/// each [`OnlinePredictor`](crate::streaming::OnlinePredictor); the
/// offline calibration simulation ([`sampled_records`]) drives an
/// identical copy so gated calibration windows match deployment
/// bit-for-bit.
#[derive(Debug, Clone)]
pub struct Sampler {
    policy: SamplingPolicy,
    /// The model's configured collection window `M` (buffer capacity and
    /// the resolved `m_max`).
    base_window: usize,
    /// True while the gate is closed (currently skipping frames).
    gating: bool,
    /// Length of the current consecutive-skip run.
    run: u32,
    /// The last accepted frame — the delta reference.
    reference: Vec<f32>,
    /// Current window length `m` the encoder consumes per anchor.
    m: usize,
    /// EMA of the anchor hit rate (adaptive policy only).
    ema: f64,
    /// Resolved `[m_min, m_max]` bounds.
    m_min: usize,
    m_max: usize,
    beta: f64,
    skipped: u64,
    admitted: u64,
}

impl Sampler {
    /// Builds the state machine for `policy` against a model whose
    /// collection window is `base_window` frames. An adaptive policy's
    /// `m_max = 0` resolves to `base_window`; bounds are clamped into
    /// `[1, base_window]`.
    pub fn new(policy: SamplingPolicy, base_window: usize) -> Sampler {
        assert!(base_window > 0, "collection window must be positive");
        let (m_min, m_max, beta) = match &policy {
            SamplingPolicy::Adaptive { window, .. } => {
                let m_max = if window.m_max == 0 {
                    base_window
                } else {
                    window.m_max.min(base_window)
                };
                (window.m_min.clamp(1, m_max), m_max, window.beta)
            }
            _ => (base_window, base_window, 1.0),
        };
        Sampler {
            policy,
            base_window,
            gating: false,
            run: 0,
            reference: Vec::new(),
            // Start at the full window: conservative until the hit EMA
            // says the stream is quiet.
            m: m_max,
            ema: 1.0,
            m_min,
            m_max,
            beta,
            skipped: 0,
            admitted: 0,
        }
    }

    /// The policy this sampler runs.
    pub fn policy(&self) -> &SamplingPolicy {
        &self.policy
    }

    /// Decides whether a frame is admitted into the collection window.
    /// `warmed` is whether the window buffer was already full *before*
    /// this frame — the gate stays open until the first full window so
    /// the buffer always fills on schedule. Updates the gate state, the
    /// delta reference, and the skip/admit counters.
    pub fn admit(&mut self, features: &[f32], warmed: bool) -> bool {
        let gate = match self.policy.gate() {
            None => {
                self.admitted += 1;
                return true;
            }
            Some(g) => g.clone(),
        };
        if !warmed {
            self.reference = features.to_vec();
            self.admitted += 1;
            return true;
        }
        let delta = mean_abs_delta(features, &self.reference);
        // Hysteresis: once skipping, the exit bar is higher.
        let bar = if self.gating {
            gate.threshold * gate.hysteresis
        } else {
            gate.threshold
        };
        let mut skip = delta < bar;
        if skip && gate.max_run > 0 && self.run >= gate.max_run {
            skip = false; // force-refresh: bound the carry staleness
        }
        if skip {
            self.gating = true;
            self.run += 1;
            self.skipped += 1;
            false
        } else {
            self.gating = false;
            self.run = 0;
            self.reference = features.to_vec();
            self.admitted += 1;
            true
        }
    }

    /// Feeds one anchor's hit indicator (`max_k b_k >= `[`HIT_TAU1`])
    /// into the window-adaptation law. No-op for non-adaptive policies.
    /// Called once per anchor, *after* the anchor was scored (or its
    /// carried scores reused), so the window used at an anchor is always
    /// the pre-update `m`.
    pub fn observe_hit(&mut self, hit: bool) {
        if !matches!(self.policy, SamplingPolicy::Adaptive { .. }) {
            return;
        }
        self.ema = (1.0 - self.beta) * self.ema + self.beta * f64::from(u8::from(hit));
        let span = (self.m_max - self.m_min) as f64;
        self.m = self.m_min + (self.ema * span).round() as usize;
    }

    /// The window length `m` the encoder consumes at the next anchor.
    pub fn window_len(&self) -> usize {
        self.m
    }

    /// The model's configured collection window `M`.
    pub fn base_window(&self) -> usize {
        self.base_window
    }

    /// Frames gated (acknowledged but not encoded) so far.
    pub fn frames_skipped(&self) -> u64 {
        self.skipped
    }

    /// Frames admitted into the window buffer so far.
    pub fn frames_admitted(&self) -> u64 {
        self.admitted
    }

    /// The last accepted frame — the delta reference the gate compares
    /// against, and the anchor-level carry decision's content fingerprint.
    /// Empty until the first frame is admitted.
    pub fn reference(&self) -> &[f32] {
        &self.reference
    }
}

/// The offline simulation's image of the deployed duplicate-carry memo:
/// what the last *scored* anchor saw, so carried anchors can be rebuilt
/// with the exact window whose scores deployment reuses.
struct SimMemo {
    /// Window length the scored anchor consumed.
    m: usize,
    /// The scored anchor's covariate window — the carry drift reference.
    covariates: Matrix,
    /// Consecutive anchors carried since the score.
    run: u32,
    /// Raw-score hit bit of the scored anchor (adaptive only).
    hit: bool,
}

/// Simulates a sampling policy over a full feature matrix and returns
/// each input record rebuilt with the window its anchor would see in
/// deployment: the last `m` admitted rows at a *scored* anchor (where
/// `m` is the adaptive window length at that point of the stream), or
/// the previous scored anchor's window verbatim at a *carried* anchor —
/// scoring a duplicated window reproduces exactly the scores deployment
/// reuses.
///
/// The simulation drives a [`Sampler`] plus a [`WindowBuffer`] through
/// rows `0..=max_anchor` with exactly the online cadence (first anchor
/// when the buffer fills, then every `horizon` frames), including the
/// anchor-level carry, so gated calibration windows are bit-identical
/// to what an [`OnlinePredictor`](crate::streaming::OnlinePredictor)
/// under the same policy scores. `model`/`lane` are only consulted by
/// the adaptive policy (the hit EMA needs raw scores); `Fixed` returns
/// the records unchanged. A record whose anchor does not fall on the
/// decision cadence gets the fresh last-`m`-rows window at its row.
///
/// # Panics
/// Panics if any record anchor lies outside the feature matrix or
/// before the first full window.
pub fn sampled_records(
    model: &EventHit,
    features: &Matrix,
    records: &[Record],
    policy: &SamplingPolicy,
    lane: InferenceLane,
) -> Vec<Record> {
    if policy.is_fixed() || records.is_empty() {
        return records.to_vec();
    }
    let cfg = model.config();
    let (window, horizon, d) = (cfg.window, cfg.horizon as u64, cfg.input_dim);
    let max_anchor = records.iter().map(|r| r.anchor).max().unwrap();
    assert!(
        (max_anchor as usize) < features.rows(),
        "record anchor {max_anchor} outside the feature matrix"
    );
    // anchor -> indices of records wanting a window there.
    let mut wanted: std::collections::HashMap<u64, Vec<usize>> = std::collections::HashMap::new();
    for (i, r) in records.iter().enumerate() {
        assert!(
            r.anchor + 1 >= window as u64,
            "record anchor {} precedes the first full window",
            r.anchor
        );
        wanted.entry(r.anchor).or_default().push(i);
    }

    let gate = policy.gate().cloned().expect("non-Fixed policy has a gate");
    let adaptive = matches!(policy, SamplingPolicy::Adaptive { .. });
    let quantized = (adaptive && lane == InferenceLane::Quantized).then(|| model.quantized());
    let num_events = cfg.num_events;

    let mut sampler = Sampler::new(policy.clone(), window);
    let mut buffer = WindowBuffer::new(window, d);
    let mut countdown = 0u64;
    let mut memo: Option<SimMemo> = None;
    let mut out: Vec<Option<Record>> = vec![None; records.len()];

    for row in 0..=max_anchor {
        let feats = features.row(row as usize);
        let warmed = buffer.is_full();
        if sampler.admit(feats, warmed) {
            buffer.push(feats.to_vec());
        }
        // The online anchor cadence (identical under every policy: the
        // warmup frames are always admitted, so the buffer fills at
        // stream position `window` exactly as without gating). `m` is
        // read *before* the anchor's EMA update, mirroring
        // `OnlinePredictor::push_frame`.
        let mut at_anchor = false;
        if buffer.is_full() {
            if countdown > 0 {
                countdown -= 1;
            } else {
                countdown = horizon - 1;
                at_anchor = true;
                let m = sampler.window_len();
                let candidate = buffer.covariates_last(m);
                let carried = matches!(&memo, Some(c) if c.m == m
                    && gate.carries(window_drift(&candidate, &c.covariates), c.run));
                if carried {
                    memo.as_mut().expect("carried implies memo").run += 1;
                } else {
                    let covariates = candidate;
                    let hit = adaptive && {
                        let rec = Record {
                            anchor: row,
                            covariates: covariates.clone(),
                            labels: vec![EventLabel::absent(); num_events],
                        };
                        let outputs = match &quantized {
                            Some(q) => q.forward_inference(&[&rec]),
                            None => model.forward_inference(&[&rec]),
                        };
                        outputs
                            .iter()
                            .any(|head| f64::from(head.row(0)[0]) >= HIT_TAU1)
                    };
                    memo = Some(SimMemo {
                        m,
                        covariates,
                        run: 0,
                        hit,
                    });
                }
                let hit = memo.as_ref().expect("anchor scored or carried").hit;
                sampler.observe_hit(hit);
            }
        }
        if let Some(idxs) = wanted.get(&row) {
            let covariates = if at_anchor {
                memo.as_ref().expect("anchor visited").covariates.clone()
            } else {
                buffer.covariates_last(sampler.window_len())
            };
            for &i in idxs {
                out[i] = Some(Record {
                    anchor: row,
                    covariates: covariates.clone(),
                    labels: records[i].labels.clone(),
                });
            }
        }
    }
    out.into_iter()
        .map(|r| r.expect("every requested anchor visited"))
        .collect()
}

/// Scores records whose windows may have *different* row counts (the
/// output of [`sampled_records`] under an adaptive policy): maximal runs
/// of equal-length windows are batched through
/// [`score_records_lane`], preserving
/// record order. With uniform windows this is exactly one
/// `score_records_lane` call.
pub fn score_sampled_records(
    model: &EventHit,
    records: &[Record],
    batch_size: usize,
    lane: InferenceLane,
) -> Vec<ScoredRecord> {
    let mut out = Vec::with_capacity(records.len());
    let mut start = 0;
    while start < records.len() {
        let m = records[start].covariates.rows();
        let mut end = start + 1;
        while end < records.len() && records[end].covariates.rows() == m {
            end += 1;
        }
        out.extend(score_records_lane(
            model,
            &records[start..end],
            batch_size,
            lane,
        ));
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_the_three_kinds() {
        assert_eq!(SamplingPolicy::parse("fixed"), Ok(SamplingPolicy::Fixed));
        match SamplingPolicy::parse("delta:0.2:1.5:8").unwrap() {
            SamplingPolicy::DeltaGate(g) => {
                assert_eq!(g.threshold, 0.2);
                assert_eq!(g.hysteresis, 1.5);
                assert_eq!(g.max_run, 8);
                assert_eq!(g.max_carry, GateParams::default().max_carry);
            }
            p => panic!("expected DeltaGate, got {p:?}"),
        }
        match SamplingPolicy::parse("adaptive:0.1:3:8:0.5").unwrap() {
            SamplingPolicy::Adaptive { gate, window } => {
                assert_eq!(gate.threshold, 0.1);
                assert_eq!(window.m_min, 3);
                assert_eq!(window.m_max, 8);
                assert_eq!(window.beta, 0.5);
            }
            p => panic!("expected Adaptive, got {p:?}"),
        }
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            "bogus",
            "fixed:1",
            "delta",
            "delta:x",
            "delta:-1",
            "delta:0.1:0.5", // hyst < 1
            "adaptive:0.1",
            "adaptive:0.1:0",      // m_min 0
            "adaptive:0.1:4:10:0", // beta 0
            "delta:0.1:1.2:4:9:2", // too many fields
        ] {
            assert!(SamplingPolicy::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn delta_is_mean_abs_difference() {
        assert_eq!(mean_abs_delta(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert_eq!(mean_abs_delta(&[1.0, 3.0], &[2.0, 1.0]), 1.5);
        assert_eq!(mean_abs_delta(&[], &[]), 0.0);
    }

    #[test]
    fn gate_skips_below_threshold_and_admits_motion() {
        let mut s = Sampler::new(
            SamplingPolicy::DeltaGate(GateParams {
                threshold: 0.5,
                hysteresis: 1.0,
                max_run: 0,
                ..GateParams::default()
            }),
            3,
        );
        // Warmup frames always admitted.
        assert!(s.admit(&[0.0], false));
        // Still frame: gated.
        assert!(!s.admit(&[0.1], true));
        assert!(!s.admit(&[0.2], true));
        // Motion relative to the *reference* (0.0), not the last frame.
        assert!(s.admit(&[0.9], true));
        assert_eq!(s.frames_skipped(), 2);
        assert_eq!(s.frames_admitted(), 2);
    }

    #[test]
    fn hysteresis_raises_the_exit_bar() {
        let gate = GateParams {
            threshold: 0.4,
            hysteresis: 2.0,
            max_run: 0,
            ..GateParams::default()
        };
        let mut s = Sampler::new(SamplingPolicy::DeltaGate(gate), 3);
        assert!(s.admit(&[0.0], false)); // reference = 0.0
        assert!(!s.admit(&[0.3], true)); // below 0.4 -> start skipping
                                         // 0.5 clears the base threshold but not the 0.8 exit bar.
        assert!(!s.admit(&[0.5], true));
        assert!(s.admit(&[0.9], true)); // clears the exit bar
                                        // Gate open again: base threshold applies (ref = 0.9 now).
        assert!(s.admit(&[0.4], true));
    }

    #[test]
    fn max_run_bounds_consecutive_skips() {
        let gate = GateParams {
            threshold: 1.0,
            hysteresis: 1.0,
            max_run: 3,
            ..GateParams::default()
        };
        let mut s = Sampler::new(SamplingPolicy::DeltaGate(gate), 2);
        assert!(s.admit(&[0.0], false));
        let pattern: Vec<bool> = (0..8).map(|_| s.admit(&[0.0], true)).collect();
        // 3 skips, then a forced accept, repeating.
        assert_eq!(
            pattern,
            vec![false, false, false, true, false, false, false, true]
        );
    }

    #[test]
    fn window_drift_averages_out_noise_but_sees_sustained_shifts() {
        let a = Matrix::from_rows(&[vec![0.0, 0.0], vec![0.0, 0.0]]);
        // Zero-mean per-row noise cancels in the window means.
        let noisy = Matrix::from_rows(&[vec![0.2, -0.1], vec![-0.2, 0.1]]);
        assert_eq!(window_drift(&a, &noisy), 0.0);
        // A sustained shift of 0.3 in one of two dims reads 0.15.
        let shifted = Matrix::from_rows(&[vec![0.3, 0.0], vec![0.3, 0.0]]);
        assert!((window_drift(&a, &shifted) - 0.15).abs() < 1e-6);
        // Shape mismatch never carries.
        let wider = Matrix::zeros(2, 3);
        assert_eq!(window_drift(&a, &wider), f32::INFINITY);
        let taller = Matrix::zeros(3, 2);
        assert_eq!(window_drift(&a, &taller), f32::INFINITY);
    }

    #[test]
    fn carry_gate_bounds_run_and_threshold() {
        let g = GateParams {
            threshold: 0.1,
            hysteresis: 1.0,
            max_run: 0,
            max_carry: 2,
        };
        assert!(g.carries(0.05, 0));
        assert!(g.carries(0.05, 1));
        assert!(!g.carries(0.05, 2), "max_carry forces a re-score");
        assert!(!g.carries(0.2, 0), "content moved: score");
        let off = GateParams { max_carry: 0, ..g };
        assert!(!off.carries(0.0, 0), "max_carry 0 disables carrying");
    }

    #[test]
    fn adaptive_window_tracks_hit_ema_within_bounds() {
        let policy = SamplingPolicy::Adaptive {
            gate: GateParams::default(),
            window: WindowParams {
                m_min: 2,
                m_max: 0, // resolves to base window
                beta: 0.5,
            },
        };
        let mut s = Sampler::new(policy, 10);
        assert_eq!(s.window_len(), 10); // starts at m_max
        for _ in 0..64 {
            s.observe_hit(false);
        }
        assert_eq!(s.window_len(), 2, "quiet stream shrinks to m_min");
        for _ in 0..64 {
            s.observe_hit(true);
        }
        assert_eq!(s.window_len(), 10, "busy stream grows back to m_max");
    }

    #[test]
    fn non_adaptive_policies_keep_the_full_window() {
        let mut s = Sampler::new(SamplingPolicy::Fixed, 7);
        s.observe_hit(false);
        assert_eq!(s.window_len(), 7);
        let mut s = Sampler::new(SamplingPolicy::DeltaGate(GateParams::default()), 7);
        for _ in 0..10 {
            s.observe_hit(false);
        }
        assert_eq!(s.window_len(), 7);
    }

    #[test]
    fn fixed_policy_admits_everything() {
        let mut s = Sampler::new(SamplingPolicy::Fixed, 4);
        for i in 0..100 {
            assert!(s.admit(&[i as f32 * 1e-6], i >= 4));
        }
        assert_eq!(s.frames_skipped(), 0);
        assert_eq!(s.frames_admitted(), 100);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SamplingPolicy::Fixed.label(), "fixed");
        assert_eq!(
            SamplingPolicy::parse("delta:0.25").unwrap().label(),
            "delta@0.25"
        );
        assert_eq!(
            SamplingPolicy::parse("adaptive:0.1:4").unwrap().label(),
            "adaptive@0.1/4-M"
        );
    }
}
