//! Deterministic fault injection for the cloud-inference path.
//!
//! The simulator's CI has so far been a perfectly available oracle; real
//! edge-cloud links drop, throttle, and stall. This module injects faults
//! *deterministically*: every draw comes from a dedicated
//! [`eventhit_rng`] stream derived from `(seed, FAULT_STREAM_ID)`, so a
//! faulted run is bit-reproducible from its seed and the whole fault
//! history is captured in a [`FaultTrace`] with a stable fingerprint.
//!
//! Two mechanisms compose:
//!
//! * **Independent per-attempt faults** — transient 5xx-style errors,
//!   per-request timeouts, 429-style throttling, and exponential latency
//!   inflation on successful attempts.
//! * **Correlated outage bursts** — a two-state Gilbert–Elliott channel
//!   (Good/Bad). The state advances once per attempt; in the Bad state a
//!   request is lost with probability [`FaultConfig::bad_loss`], which
//!   produces the bursty, correlated failures that defeat naive retry
//!   loops and exercise the circuit breaker.

use eventhit_rng::rngs::StdRng;
use eventhit_rng::Rng;

/// The RNG stream id reserved for fault injection. Distinct from every
/// stream the training/data pipeline uses, so enabling faults never
/// perturbs the model or the synthetic stream.
pub const FAULT_STREAM_ID: u64 = 0xFA_17;

/// What kind of fault an attempt hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Transient server error (5xx-class); immediately retryable.
    Transient,
    /// The attempt exceeded its per-request timeout.
    Timeout,
    /// 429-style throttling; the service suggests a retry-after delay.
    Throttled,
    /// The Gilbert–Elliott channel is in its Bad state and ate the request.
    Outage,
}

/// Outcome of a single submission attempt against the faulty channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttemptOutcome {
    /// The attempt was served after `latency` simulated seconds (service
    /// time times the sampled inflation factor).
    Success {
        /// End-to-end seconds for this attempt.
        latency: f64,
    },
    /// The attempt failed.
    Fault {
        /// The failure mode.
        kind: FaultKind,
        /// Seconds consumed before the failure was observed (e.g. a
        /// timeout burns its full timeout budget).
        wasted: f64,
        /// Server-suggested minimum delay before retrying (throttling);
        /// zero otherwise.
        retry_after: f64,
    },
}

impl AttemptOutcome {
    /// True iff the attempt succeeded.
    pub fn is_success(&self) -> bool {
        matches!(self, AttemptOutcome::Success { .. })
    }
}

/// Fault-injection parameters. The default is a perfectly reliable
/// channel (all probabilities zero), so existing code paths are
/// unaffected unless faults are asked for.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability an attempt fails with a transient error (Good state).
    pub transient_prob: f64,
    /// Probability an attempt times out (Good state).
    pub timeout_prob: f64,
    /// Probability an attempt is throttled (Good state).
    pub throttle_prob: f64,
    /// Per-attempt timeout: seconds wasted when an attempt times out.
    pub attempt_timeout: f64,
    /// Base retry-after suggested by a throttling response (seconds).
    pub throttle_delay: f64,
    /// Mean of the exponential extra-latency multiplier: a successful
    /// attempt takes `service * (1 + Exp(mean))` seconds. Zero disables
    /// inflation.
    pub latency_inflation: f64,
    /// Gilbert–Elliott: per-attempt probability of Good → Bad.
    pub p_good_to_bad: f64,
    /// Gilbert–Elliott: per-attempt probability of Bad → Good.
    pub p_bad_to_good: f64,
    /// Probability an attempt is lost while the channel is Bad.
    pub bad_loss: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::reliable()
    }
}

impl FaultConfig {
    /// A perfectly reliable channel: no faults, no inflation.
    pub fn reliable() -> Self {
        FaultConfig {
            transient_prob: 0.0,
            timeout_prob: 0.0,
            throttle_prob: 0.0,
            attempt_timeout: 5.0,
            throttle_delay: 1.0,
            latency_inflation: 0.0,
            p_good_to_bad: 0.0,
            p_bad_to_good: 1.0,
            bad_loss: 0.0,
        }
    }

    /// A moderately lossy deployment profile: occasional independent
    /// faults plus outage bursts averaging ~5 attempts every ~50.
    pub fn lossy() -> Self {
        FaultConfig {
            transient_prob: 0.05,
            timeout_prob: 0.02,
            throttle_prob: 0.03,
            attempt_timeout: 5.0,
            throttle_delay: 1.0,
            latency_inflation: 0.25,
            p_good_to_bad: 0.02,
            p_bad_to_good: 0.2,
            bad_loss: 0.95,
        }
    }

    /// Validates every probability and duration.
    pub fn validate(&self) -> Result<(), crate::error::CoreError> {
        let probs = [
            ("transient_prob", self.transient_prob),
            ("timeout_prob", self.timeout_prob),
            ("throttle_prob", self.throttle_prob),
            ("p_good_to_bad", self.p_good_to_bad),
            ("p_bad_to_good", self.p_bad_to_good),
            ("bad_loss", self.bad_loss),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(crate::error::CoreError::InvalidConfig(format!(
                    "{name} = {p} outside [0, 1]"
                )));
            }
        }
        let sum = self.transient_prob + self.timeout_prob + self.throttle_prob;
        if sum > 1.0 {
            return Err(crate::error::CoreError::InvalidConfig(format!(
                "independent fault probabilities sum to {sum} > 1"
            )));
        }
        for (name, d) in [
            ("attempt_timeout", self.attempt_timeout),
            ("throttle_delay", self.throttle_delay),
            ("latency_inflation", self.latency_inflation),
        ] {
            if !(d.is_finite() && d >= 0.0) {
                return Err(crate::error::CoreError::InvalidConfig(format!(
                    "{name} = {d} must be finite and non-negative"
                )));
            }
        }
        Ok(())
    }
}

/// Gilbert–Elliott channel state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelState {
    /// Nominal operation: only independent faults apply.
    Good,
    /// Outage burst: requests are lost with probability `bad_loss`.
    Bad,
}

/// One recorded attempt, compact enough to compare whole traces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEntry {
    /// Monotone attempt counter.
    pub attempt: u64,
    /// Channel state the attempt saw.
    pub channel: ChannelState,
    /// What happened.
    pub outcome: AttemptOutcome,
}

/// The full per-run fault history, with a stable fingerprint for
/// bit-reproducibility assertions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultTrace {
    /// Every attempt, in order.
    pub entries: Vec<TraceEntry>,
}

impl FaultTrace {
    /// FNV-1a over the exact bit patterns of every entry: two traces have
    /// equal fingerprints iff they are bit-identical.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |byte: u8| {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        for e in &self.entries {
            for b in e.attempt.to_le_bytes() {
                mix(b);
            }
            mix(matches!(e.channel, ChannelState::Bad) as u8);
            match e.outcome {
                AttemptOutcome::Success { latency } => {
                    mix(0);
                    for b in latency.to_bits().to_le_bytes() {
                        mix(b);
                    }
                }
                AttemptOutcome::Fault {
                    kind,
                    wasted,
                    retry_after,
                } => {
                    mix(match kind {
                        FaultKind::Transient => 1,
                        FaultKind::Timeout => 2,
                        FaultKind::Throttled => 3,
                        FaultKind::Outage => 4,
                    });
                    for b in wasted.to_bits().to_le_bytes() {
                        mix(b);
                    }
                    for b in retry_after.to_bits().to_le_bytes() {
                        mix(b);
                    }
                }
            }
        }
        h
    }

    /// Number of attempts that hit `kind`.
    pub fn count(&self, kind: FaultKind) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e.outcome, AttemptOutcome::Fault { kind: k, .. } if k == kind))
            .count()
    }
}

/// Seed-driven fault injector: owns its RNG stream, the Gilbert–Elliott
/// state, and the trace.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    cfg: FaultConfig,
    rng: StdRng,
    state: ChannelState,
    attempts: u64,
    /// Recorded history of every attempt.
    pub trace: FaultTrace,
}

impl FaultInjector {
    /// Creates an injector for the run seeded by `seed`. The RNG stream is
    /// `(seed, FAULT_STREAM_ID)`, independent of every other stream the
    /// pipeline derives from the same seed.
    pub fn new(cfg: FaultConfig, seed: u64) -> Self {
        FaultInjector {
            cfg,
            rng: StdRng::stream(seed, FAULT_STREAM_ID),
            state: ChannelState::Good,
            attempts: 0,
            trace: FaultTrace::default(),
        }
    }

    /// The injector's fault configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Current Gilbert–Elliott state.
    pub fn channel_state(&self) -> ChannelState {
        self.state
    }

    /// Simulates one attempt whose fault-free service time would be
    /// `service_seconds`. Advances the channel, samples a fault (or
    /// success latency), and records the outcome in the trace.
    pub fn attempt(&mut self, service_seconds: f64) -> AttemptOutcome {
        // Advance the Gilbert–Elliott chain one step per attempt. The
        // transition is sampled before the loss draw, matching the
        // standard discrete-time formulation.
        self.state = match self.state {
            ChannelState::Good if self.rng.random_bool(self.cfg.p_good_to_bad) => ChannelState::Bad,
            ChannelState::Bad if self.rng.random_bool(self.cfg.p_bad_to_good) => ChannelState::Good,
            s => s,
        };

        let outcome = if self.state == ChannelState::Bad && self.rng.random_bool(self.cfg.bad_loss)
        {
            AttemptOutcome::Fault {
                kind: FaultKind::Outage,
                // An outage manifests as an unanswered request: the full
                // attempt timeout is burned before the client gives up.
                wasted: self.cfg.attempt_timeout,
                retry_after: 0.0,
            }
        } else {
            // Independent faults: one uniform draw partitioned into the
            // three disjoint failure bands, remainder = success.
            let u: f64 = self.rng.random();
            if u < self.cfg.transient_prob {
                AttemptOutcome::Fault {
                    kind: FaultKind::Transient,
                    wasted: 0.0,
                    retry_after: 0.0,
                }
            } else if u < self.cfg.transient_prob + self.cfg.timeout_prob {
                AttemptOutcome::Fault {
                    kind: FaultKind::Timeout,
                    wasted: self.cfg.attempt_timeout,
                    retry_after: 0.0,
                }
            } else if u < self.cfg.transient_prob + self.cfg.timeout_prob + self.cfg.throttle_prob {
                AttemptOutcome::Fault {
                    kind: FaultKind::Throttled,
                    wasted: 0.0,
                    retry_after: self.cfg.throttle_delay,
                }
            } else {
                let inflation = if self.cfg.latency_inflation > 0.0 {
                    // Exponential via inverse CDF; 1 - u' stays in (0, 1].
                    let u2: f64 = self.rng.random();
                    -(1.0 - u2).max(f64::MIN_POSITIVE).ln() * self.cfg.latency_inflation
                } else {
                    0.0
                };
                AttemptOutcome::Success {
                    latency: service_seconds * (1.0 + inflation),
                }
            }
        };

        self.trace.entries.push(TraceEntry {
            attempt: self.attempts,
            channel: self.state,
            outcome,
        });
        self.attempts += 1;
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_channel_never_faults() {
        let mut inj = FaultInjector::new(FaultConfig::reliable(), 7);
        for _ in 0..200 {
            let o = inj.attempt(1.0);
            assert_eq!(o, AttemptOutcome::Success { latency: 1.0 });
        }
        assert_eq!(inj.trace.entries.len(), 200);
        assert_eq!(inj.channel_state(), ChannelState::Good);
    }

    #[test]
    fn lossy_channel_faults_sometimes_and_replays_exactly() {
        let run = |seed| {
            let mut inj = FaultInjector::new(FaultConfig::lossy(), seed);
            for _ in 0..500 {
                inj.attempt(2.0);
            }
            inj.trace
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "same seed must replay the same trace");
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = run(43);
        assert_ne!(
            a.fingerprint(),
            c.fingerprint(),
            "different seed, different trace"
        );

        let faults = a.entries.iter().filter(|e| !e.outcome.is_success()).count();
        assert!(faults > 0, "lossy profile should fault");
        assert!(faults < 500, "but not always");
    }

    #[test]
    fn outages_come_in_bursts() {
        // With sticky Bad state, outage faults should cluster: the number
        // of Good↔Bad transitions is far below the number of Bad attempts.
        let cfg = FaultConfig {
            p_good_to_bad: 0.05,
            p_bad_to_good: 0.1,
            bad_loss: 1.0,
            ..FaultConfig::reliable()
        };
        let mut inj = FaultInjector::new(cfg, 3);
        let mut bad_attempts = 0usize;
        let mut transitions = 0usize;
        let mut prev = ChannelState::Good;
        for _ in 0..2000 {
            inj.attempt(1.0);
            let s = inj.channel_state();
            if s == ChannelState::Bad {
                bad_attempts += 1;
            }
            if s != prev {
                transitions += 1;
            }
            prev = s;
        }
        assert!(bad_attempts > 100, "bad attempts {bad_attempts}");
        assert!(
            transitions * 3 < bad_attempts,
            "outages should be bursty: {transitions} transitions vs {bad_attempts} bad attempts"
        );
        assert_eq!(inj.trace.count(FaultKind::Outage), bad_attempts);
    }

    #[test]
    fn timeout_burns_the_attempt_budget() {
        let cfg = FaultConfig {
            timeout_prob: 1.0,
            attempt_timeout: 7.5,
            ..FaultConfig::reliable()
        };
        let mut inj = FaultInjector::new(cfg, 1);
        match inj.attempt(1.0) {
            AttemptOutcome::Fault {
                kind: FaultKind::Timeout,
                wasted,
                ..
            } => assert_eq!(wasted, 7.5),
            o => panic!("expected timeout, got {o:?}"),
        }
    }

    #[test]
    fn throttle_suggests_retry_after() {
        let cfg = FaultConfig {
            throttle_prob: 1.0,
            throttle_delay: 2.25,
            ..FaultConfig::reliable()
        };
        let mut inj = FaultInjector::new(cfg, 1);
        match inj.attempt(1.0) {
            AttemptOutcome::Fault {
                kind: FaultKind::Throttled,
                retry_after,
                ..
            } => assert_eq!(retry_after, 2.25),
            o => panic!("expected throttle, got {o:?}"),
        }
    }

    #[test]
    fn latency_inflation_only_stretches() {
        let cfg = FaultConfig {
            latency_inflation: 0.5,
            ..FaultConfig::reliable()
        };
        let mut inj = FaultInjector::new(cfg, 9);
        for _ in 0..100 {
            match inj.attempt(4.0) {
                AttemptOutcome::Success { latency } => {
                    assert!(latency >= 4.0, "inflation never shrinks latency")
                }
                o => panic!("reliable+inflation cannot fault: {o:?}"),
            }
        }
    }

    #[test]
    fn validate_rejects_bad_probabilities() {
        let mut cfg = FaultConfig::reliable();
        assert!(cfg.validate().is_ok());
        cfg.transient_prob = 1.5;
        assert!(cfg.validate().is_err());
        let mut cfg = FaultConfig::reliable();
        cfg.transient_prob = 0.6;
        cfg.timeout_prob = 0.6;
        assert!(cfg.validate().is_err(), "summed bands exceed 1");
        let mut cfg = FaultConfig::reliable();
        cfg.attempt_timeout = f64::NAN;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn fault_stream_is_independent_of_seed_zero_convention() {
        // Stream derivation must differ across seeds even at stream id 0xFA17.
        let a = FaultInjector::new(FaultConfig::lossy(), 0);
        let b = FaultInjector::new(FaultConfig::lossy(), 1);
        let mut a = a;
        let mut b = b;
        let oa: Vec<_> = (0..32).map(|_| a.attempt(1.0)).collect();
        let ob: Vec<_> = (0..32).map(|_| b.attempt(1.0)).collect();
        assert_ne!(oa, ob);
    }
}
