//! Inference-time scoring and the plain EHO decision rule (Eqs. 4–6).

use eventhit_nn::matrix::Matrix;
use eventhit_nn::quant::InferenceLane;
use eventhit_parallel::{DeterministicReduce, Pool};
use eventhit_video::records::{EventLabel, Record};

use crate::model::EventHit;

/// Per-event scores of one record: the existence score `b_k` and the
/// per-offset occurrence scores `θ_{k,1..H}` (index `v - 1` holds offset
/// `v`).
#[derive(Debug, Clone, PartialEq)]
pub struct EventScores {
    /// Existence score `b_k ∈ [0, 1]`.
    pub b: f64,
    /// Occurrence scores, length `H`.
    pub theta: Vec<f32>,
}

/// A record with its model scores and ground-truth labels — the unit on
/// which calibration, strategy sweeps, and metrics operate. Computing these
/// once per record lets every `(c, α, τ)` sweep reuse the same forward
/// passes.
#[derive(Debug, Clone)]
pub struct ScoredRecord {
    /// Anchor frame of the record.
    pub anchor: u64,
    /// One score set per event type.
    pub scores: Vec<EventScores>,
    /// Ground-truth labels per event type.
    pub labels: Vec<EventLabel>,
}

/// Runs the model over `records` in minibatches and collects scores.
///
/// Batches score in parallel on the ambient [`Pool::current`]; every
/// record's scores come out of the same forward arithmetic on the same
/// batch as the sequential path, so the result is bit-identical for any
/// worker count.
pub fn score_records(model: &EventHit, records: &[Record], batch_size: usize) -> Vec<ScoredRecord> {
    score_records_with(model, records, batch_size, &Pool::current())
}

/// [`score_records`] on an explicit [`Pool`] (one task per minibatch,
/// merged in record order).
pub fn score_records_with(
    model: &EventHit,
    records: &[Record],
    batch_size: usize,
    pool: &Pool,
) -> Vec<ScoredRecord> {
    score_records_lane_with(model, records, batch_size, InferenceLane::Exact, pool)
}

/// [`score_records`] on an explicit [`InferenceLane`]: `Exact` runs the
/// trained f32 forward, `Quantized` snapshots the model onto the int8
/// fast lane once (amortized over all minibatches) and scores on it.
/// Either lane is bit-identical across worker counts.
pub fn score_records_lane(
    model: &EventHit,
    records: &[Record],
    batch_size: usize,
    lane: InferenceLane,
) -> Vec<ScoredRecord> {
    score_records_lane_with(model, records, batch_size, lane, &Pool::current())
}

/// [`score_records_lane`] on an explicit [`Pool`].
pub fn score_records_lane_with(
    model: &EventHit,
    records: &[Record],
    batch_size: usize,
    lane: InferenceLane,
    pool: &Pool,
) -> Vec<ScoredRecord> {
    match lane {
        InferenceLane::Exact => score_chunks(records, batch_size, pool, |batch| {
            model.forward_inference(batch)
        }),
        InferenceLane::Quantized => {
            let quantized = model.quantized();
            score_chunks(records, batch_size, pool, move |batch| {
                quantized.forward_inference(batch)
            })
        }
    }
}

/// Assembles the [`ScoredRecord`] of row `i` from a set of per-head
/// forward outputs (`outputs[k]: batch x (1 + H)`).
pub fn scored_from_outputs(outputs: &[Matrix], i: usize, record: &Record) -> ScoredRecord {
    let scores = outputs
        .iter()
        .map(|head| {
            let row = head.row(i);
            EventScores {
                b: row[0] as f64,
                theta: row[1..].to_vec(),
            }
        })
        .collect();
    ScoredRecord {
        anchor: record.anchor,
        scores,
        labels: record.labels.clone(),
    }
}

/// Shared minibatch scaffold: chunk, forward with `f`, merge in record
/// order via [`DeterministicReduce`].
fn score_chunks(
    records: &[Record],
    batch_size: usize,
    pool: &Pool,
    f: impl Fn(&[&Record]) -> Vec<Matrix> + Sync,
) -> Vec<ScoredRecord> {
    assert!(batch_size > 0);
    let chunks: Vec<&[Record]> = records.chunks(batch_size).collect();
    let reduce = DeterministicReduce::with_capacity(chunks.len());
    pool.run_tasks(chunks, |ci, chunk| {
        let batch: Vec<&Record> = chunk.iter().collect();
        let outputs = f(&batch);
        let scored: Vec<ScoredRecord> = chunk
            .iter()
            .enumerate()
            .map(|(i, record)| scored_from_outputs(&outputs, i, record))
            .collect();
        reduce.submit(ci, scored);
    });
    let mut out = Vec::with_capacity(records.len());
    for part in reduce.into_ordered() {
        out.extend(part);
    }
    out
}

/// A predicted occurrence interval for one event in one horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntervalPrediction {
    /// True iff the event is predicted to occur in the horizon.
    pub present: bool,
    /// Predicted start offset in `[1, H]` (meaningful when `present`).
    pub start: u32,
    /// Predicted end offset in `[1, H]` (meaningful when `present`).
    pub end: u32,
}

impl IntervalPrediction {
    /// The "no event" prediction.
    pub fn absent() -> Self {
        IntervalPrediction {
            present: false,
            start: 0,
            end: 0,
        }
    }

    /// Number of frames relayed for this prediction.
    pub fn frames(&self) -> u64 {
        if self.present {
            (self.end - self.start + 1) as u64
        } else {
            0
        }
    }
}

/// The raw occurrence-interval estimate of Eq. (6): the span from the first
/// to the last offset whose `θ` clears `tau2`. When no offset clears the
/// threshold the argmax offset is used as a single-frame interval, so a
/// positive existence decision always yields a non-empty relay (the paper
/// leaves this corner unspecified).
pub fn raw_interval(scores: &EventScores, tau2: f32) -> (u32, u32) {
    let mut first = None;
    let mut last = 0usize;
    for (idx, &t) in scores.theta.iter().enumerate() {
        if t >= tau2 {
            if first.is_none() {
                first = Some(idx);
            }
            last = idx;
        }
    }
    match first {
        Some(f) => ((f + 1) as u32, (last + 1) as u32),
        None => {
            let argmax = scores
                .theta
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0);
            ((argmax + 1) as u32, (argmax + 1) as u32)
        }
    }
}

/// The plain EHO decision (Eqs. 4–6): event predicted present iff
/// `b >= tau1`; interval from [`raw_interval`] with threshold `tau2`.
pub fn eho_predict(scores: &EventScores, tau1: f64, tau2: f32) -> IntervalPrediction {
    if scores.b < tau1 {
        return IntervalPrediction::absent();
    }
    let (start, end) = raw_interval(scores, tau2);
    IntervalPrediction {
        present: true,
        start,
        end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scores(b: f64, theta: Vec<f32>) -> EventScores {
        EventScores { b, theta }
    }

    #[test]
    fn raw_interval_span_of_threshold_crossings() {
        let s = scores(0.9, vec![0.1, 0.6, 0.2, 0.7, 0.8, 0.1]);
        // Offsets (1-based) above 0.5: 2, 4, 5 => span [2, 5] (Eq. 6 takes
        // min/max even across gaps).
        assert_eq!(raw_interval(&s, 0.5), (2, 5));
    }

    #[test]
    fn raw_interval_all_above() {
        let s = scores(0.9, vec![0.9, 0.9, 0.9]);
        assert_eq!(raw_interval(&s, 0.5), (1, 3));
    }

    #[test]
    fn raw_interval_falls_back_to_argmax() {
        let s = scores(0.9, vec![0.1, 0.4, 0.2]);
        assert_eq!(raw_interval(&s, 0.5), (2, 2));
    }

    #[test]
    fn eho_respects_tau1() {
        let s = scores(0.4, vec![0.9, 0.9]);
        assert_eq!(eho_predict(&s, 0.5, 0.5), IntervalPrediction::absent());
        let p = eho_predict(&s, 0.3, 0.5);
        assert!(p.present);
        assert_eq!((p.start, p.end), (1, 2));
    }

    #[test]
    fn frames_counts_inclusive_span() {
        let p = IntervalPrediction {
            present: true,
            start: 3,
            end: 7,
        };
        assert_eq!(p.frames(), 5);
        assert_eq!(IntervalPrediction::absent().frames(), 0);
    }

    #[test]
    fn score_records_shapes() {
        use crate::model::{EventHit, EventHitConfig};
        use eventhit_nn::matrix::Matrix;
        let cfg = EventHitConfig {
            input_dim: 3,
            window: 4,
            horizon: 6,
            num_events: 2,
            hidden_dim: 5,
            shared_dim: 4,
            dropout: 0.0,
        };
        let model = EventHit::new(cfg, 0);
        let records: Vec<Record> = (0..5)
            .map(|i| Record {
                anchor: i,
                covariates: Matrix::filled(4, 3, i as f32 / 5.0),
                labels: vec![EventLabel::absent(); 2],
            })
            .collect();
        let scored = score_records(&model, &records, 2);
        assert_eq!(scored.len(), 5);
        for (s, r) in scored.iter().zip(&records) {
            assert_eq!(s.anchor, r.anchor);
            assert_eq!(s.scores.len(), 2);
            assert_eq!(s.scores[0].theta.len(), 6);
            assert!((0.0..=1.0).contains(&s.scores[0].b));
        }
        // Batching must not change results.
        let scored_full = score_records(&model, &records, 64);
        for (a, b) in scored.iter().zip(&scored_full) {
            assert_eq!(a.scores, b.scores);
        }
    }
}
