//! Evaluation measures of §VI.C: frame-level recall `REC` (Eq. 12),
//! spillage `SPL` (Eq. 13), and the component measures `REC_c` / `REC_r`.

use eventhit_video::records::EventLabel;

use crate::error::CoreError;
use crate::infer::{IntervalPrediction, ScoredRecord};

/// Frame-level recall `η` of one prediction against one label: the fraction
/// of the true occurrence interval covered by the prediction. Zero when the
/// event is predicted absent; undefined (returns `None`) when the event is
/// truly absent.
pub fn eta(pred: &IntervalPrediction, label: &EventLabel) -> Option<f64> {
    if !label.present {
        return None;
    }
    if !pred.present {
        return Some(0.0);
    }
    let lo = pred.start.max(label.start);
    let hi = pred.end.min(label.end);
    let overlap = if lo <= hi { (hi - lo + 1) as f64 } else { 0.0 };
    Some(overlap / (label.end - label.start + 1) as f64)
}

/// Per-(record, event) spillage contribution of Eq. 13: the fraction of
/// non-event horizon frames that the prediction relays.
pub fn spillage_term(pred: &IntervalPrediction, label: &EventLabel, horizon: u32) -> f64 {
    if !pred.present {
        return 0.0;
    }
    let pred_frames = (pred.end - pred.start + 1) as f64;
    if label.present {
        let lo = pred.start.max(label.start);
        let hi = pred.end.min(label.end);
        let overlap = if lo <= hi { (hi - lo + 1) as f64 } else { 0.0 };
        let true_frames = (label.end - label.start + 1) as f64;
        let non_event = (horizon as f64 - true_frames).max(1.0);
        (pred_frames - overlap) / non_event
    } else {
        pred_frames / horizon as f64
    }
}

/// Aggregate evaluation of one strategy over a test split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalOutcome {
    /// End-to-end frame-level recall (Eq. 12).
    pub rec: f64,
    /// Spillage — frame-level false-positive rate (Eq. 13).
    pub spl: f64,
    /// Existence-prediction recall `REC_c`.
    pub rec_c: f64,
    /// Interval recall over true-positive existence predictions `REC_r`.
    pub rec_r: f64,
    /// Total frames relayed to the CI (per record, the union over events of
    /// the predicted intervals).
    pub frames_relayed: u64,
    /// Total frames belonging to true occurrence intervals.
    pub true_frames: u64,
    /// Number of (record, event) pairs with the event truly present.
    pub positives: usize,
    /// Number of records evaluated.
    pub records: usize,
}

/// Evaluates per-record predictions (`preds[i][k]` for record `i`, event
/// `k`) against the records' ground truth.
///
/// Panicking wrapper around [`try_evaluate`], kept for call sites that
/// treat mismatched shapes as a programming error.
pub fn evaluate(
    preds: &[Vec<IntervalPrediction>],
    records: &[ScoredRecord],
    horizon: u32,
) -> EvalOutcome {
    try_evaluate(preds, records, horizon).unwrap_or_else(|e| panic!("evaluate failed: {e}"))
}

/// Fallible form of [`evaluate`]: a prediction set that does not line up
/// with the records (one set per record, one prediction per event)
/// surfaces as a typed [`CoreError::ShapeMismatch`] instead of an abort.
pub fn try_evaluate(
    preds: &[Vec<IntervalPrediction>],
    records: &[ScoredRecord],
    horizon: u32,
) -> Result<EvalOutcome, CoreError> {
    if preds.len() != records.len() {
        return Err(CoreError::ShapeMismatch {
            what: "one prediction set per record",
            expected: records.len(),
            got: preds.len(),
        });
    }
    let mut eta_sum = 0.0;
    let mut positives = 0usize;
    let mut hits = 0usize;
    let mut eta_hits_sum = 0.0;
    let mut spl_sum = 0.0;
    let mut pairs = 0usize;
    let mut frames_relayed = 0u64;
    let mut true_frames = 0u64;

    for (pred_vec, rec) in preds.iter().zip(records) {
        if pred_vec.len() != rec.labels.len() {
            return Err(CoreError::ShapeMismatch {
                what: "one prediction per event",
                expected: rec.labels.len(),
                got: pred_vec.len(),
            });
        }
        // Union of relayed intervals across events, for cost accounting.
        frames_relayed += union_frames(pred_vec);
        for (pred, label) in pred_vec.iter().zip(&rec.labels) {
            pairs += 1;
            spl_sum += spillage_term(pred, label, horizon);
            if label.present {
                positives += 1;
                true_frames += (label.end - label.start + 1) as u64;
                let e = eta(pred, label).expect("label present");
                eta_sum += e;
                if pred.present {
                    hits += 1;
                    eta_hits_sum += e;
                }
            }
        }
    }

    Ok(EvalOutcome {
        rec: if positives > 0 {
            eta_sum / positives as f64
        } else {
            0.0
        },
        spl: if pairs > 0 {
            spl_sum / pairs as f64
        } else {
            0.0
        },
        rec_c: if positives > 0 {
            hits as f64 / positives as f64
        } else {
            0.0
        },
        rec_r: if hits > 0 {
            eta_hits_sum / hits as f64
        } else {
            0.0
        },
        frames_relayed,
        true_frames,
        positives,
        records: records.len(),
    })
}

/// Per-event evaluation: one [`EvalOutcome`] per event index, computed on
/// the same predictions. Useful for the paper's observation that a
/// multi-event task "is bound by the event with the worst performance"
/// (§VI.D).
pub fn evaluate_per_event(
    preds: &[Vec<IntervalPrediction>],
    records: &[ScoredRecord],
    horizon: u32,
) -> Vec<EvalOutcome> {
    try_evaluate_per_event(preds, records, horizon)
        .unwrap_or_else(|e| panic!("evaluate_per_event failed: {e}"))
}

/// Fallible form of [`evaluate_per_event`], with the same shape contract
/// as [`try_evaluate`] plus: every record must carry the same number of
/// events as the first.
pub fn try_evaluate_per_event(
    preds: &[Vec<IntervalPrediction>],
    records: &[ScoredRecord],
    horizon: u32,
) -> Result<Vec<EvalOutcome>, CoreError> {
    if preds.len() != records.len() {
        return Err(CoreError::ShapeMismatch {
            what: "one prediction set per record",
            expected: records.len(),
            got: preds.len(),
        });
    }
    if records.is_empty() {
        return Ok(Vec::new());
    }
    let k_events = records[0].labels.len();
    for (pred_vec, rec) in preds.iter().zip(records) {
        let per_record = rec.labels.len().min(rec.scores.len());
        if per_record != k_events || pred_vec.len() != k_events {
            return Err(CoreError::ShapeMismatch {
                what: "same event count on every record and prediction set",
                expected: k_events,
                got: per_record.min(pred_vec.len()),
            });
        }
    }
    (0..k_events)
        .map(|k| {
            let single_preds: Vec<Vec<IntervalPrediction>> =
                preds.iter().map(|p| vec![p[k]]).collect();
            let single_records: Vec<ScoredRecord> = records
                .iter()
                .map(|r| ScoredRecord {
                    anchor: r.anchor,
                    scores: vec![r.scores[k].clone()],
                    labels: vec![r.labels[k]],
                })
                .collect();
            try_evaluate(&single_preds, &single_records, horizon)
        })
        .collect()
}

/// Existence-prediction precision: among (record, event) pairs predicted
/// positive, the fraction whose event truly occurs. Complements `REC_c` in
/// the precision/recall trade-off that C-CLASSIFY tunes (§IV.B). Returns 1
/// when nothing is predicted positive.
pub fn existence_precision(preds: &[Vec<IntervalPrediction>], records: &[ScoredRecord]) -> f64 {
    assert_eq!(preds.len(), records.len());
    let mut predicted = 0usize;
    let mut correct = 0usize;
    for (pred_vec, rec) in preds.iter().zip(records) {
        for (pred, label) in pred_vec.iter().zip(&rec.labels) {
            if pred.present {
                predicted += 1;
                if label.present {
                    correct += 1;
                }
            }
        }
    }
    if predicted == 0 {
        1.0
    } else {
        correct as f64 / predicted as f64
    }
}

/// Where each ground-truth event instance of a (possibly faulted) run
/// ended up. Under fault injection a miss has two distinct causes — the
/// local predictor filtered the frames out, or the predictor relayed them
/// but the cloud path dropped the submission — and the distinction decides
/// whether to retune the predictor or harden the link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MissAttribution {
    /// Instances with at least one frame confirmed by the CI.
    pub detected: usize,
    /// Instances covered only by the local-only fallback (no CI
    /// confirmation; counted as covered but flagged).
    pub local_unconfirmed: usize,
    /// Instances missed because the predictor never relayed any of their
    /// frames.
    pub filtered_by_predictor: usize,
    /// Instances whose frames were relayed but lost to faults
    /// (dead-lettered or degraded submissions).
    pub dropped_by_faults: usize,
}

impl MissAttribution {
    /// Total ground-truth instances accounted for.
    pub fn total(&self) -> usize {
        self.detected + self.local_unconfirmed + self.filtered_by_predictor + self.dropped_by_faults
    }

    /// Instance recall counting only CI-confirmed coverage.
    pub fn confirmed_recall(&self) -> f64 {
        if self.total() == 0 {
            return 1.0;
        }
        self.detected as f64 / self.total() as f64
    }

    /// Instance recall counting local-only coverage as found.
    pub fn effective_recall(&self) -> f64 {
        if self.total() == 0 {
            return 1.0;
        }
        (self.detected + self.local_unconfirmed) as f64 / self.total() as f64
    }
}

/// Number of distinct horizon frames covered by at least one predicted
/// interval.
pub fn union_frames(preds: &[IntervalPrediction]) -> u64 {
    let mut spans: Vec<(u32, u32)> = preds
        .iter()
        .filter(|p| p.present)
        .map(|p| (p.start, p.end))
        .collect();
    if spans.is_empty() {
        return 0;
    }
    spans.sort_unstable();
    let mut total = 0u64;
    let (mut cur_s, mut cur_e) = spans[0];
    for &(s, e) in &spans[1..] {
        if s <= cur_e + 1 {
            cur_e = cur_e.max(e);
        } else {
            total += (cur_e - cur_s + 1) as u64;
            (cur_s, cur_e) = (s, e);
        }
    }
    total + (cur_e - cur_s + 1) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::EventScores;

    fn label(start: u32, end: u32) -> EventLabel {
        EventLabel {
            present: true,
            start,
            end,
            censored: false,
        }
    }

    fn pred(start: u32, end: u32) -> IntervalPrediction {
        IntervalPrediction {
            present: true,
            start,
            end,
        }
    }

    fn scored(labels: Vec<EventLabel>) -> ScoredRecord {
        let scores = labels
            .iter()
            .map(|_| EventScores {
                b: 0.5,
                theta: vec![],
            })
            .collect();
        ScoredRecord {
            anchor: 0,
            scores,
            labels,
        }
    }

    #[test]
    fn eta_full_partial_none() {
        let l = label(10, 19);
        assert_eq!(eta(&pred(10, 19), &l), Some(1.0));
        assert_eq!(eta(&pred(1, 100), &l), Some(1.0));
        assert_eq!(eta(&pred(15, 19), &l), Some(0.5));
        assert_eq!(eta(&pred(30, 40), &l), Some(0.0));
        assert_eq!(eta(&IntervalPrediction::absent(), &l), Some(0.0));
        assert_eq!(eta(&pred(1, 5), &EventLabel::absent()), None);
    }

    #[test]
    fn spillage_true_positive_case() {
        // H = 100, true [11, 20] (10 frames), predicted [6, 25] (20 frames,
        // 10 excess): SPL term = 10 / (100 - 10).
        let t = spillage_term(&pred(6, 25), &label(11, 20), 100);
        assert!((t - 10.0 / 90.0).abs() < 1e-12);
    }

    #[test]
    fn spillage_false_positive_case() {
        // Event absent, predicted 20 frames of 100: term = 0.2.
        let t = spillage_term(&pred(1, 20), &EventLabel::absent(), 100);
        assert!((t - 0.2).abs() < 1e-12);
    }

    #[test]
    fn spillage_zero_for_absent_prediction() {
        assert_eq!(
            spillage_term(&IntervalPrediction::absent(), &label(1, 10), 100),
            0.0
        );
        assert_eq!(
            spillage_term(&IntervalPrediction::absent(), &EventLabel::absent(), 100),
            0.0
        );
    }

    #[test]
    fn spillage_guards_full_horizon_event() {
        // Event covers the whole horizon: denominator guard kicks in.
        let t = spillage_term(&pred(1, 100), &label(1, 100), 100);
        assert_eq!(t, 0.0);
    }

    #[test]
    fn evaluate_mixed_records() {
        let records = vec![
            scored(vec![label(11, 20)]),
            scored(vec![EventLabel::absent()]),
            scored(vec![label(1, 10)]),
        ];
        let preds = vec![
            vec![pred(11, 20)],                 // perfect
            vec![pred(1, 50)],                  // pure false positive
            vec![IntervalPrediction::absent()], // miss
        ];
        let out = evaluate(&preds, &records, 100);
        assert!((out.rec - 0.5).abs() < 1e-12); // (1 + 0) / 2
        assert!((out.rec_c - 0.5).abs() < 1e-12); // 1 of 2 found
        assert!((out.rec_r - 1.0).abs() < 1e-12); // found one is perfect
        assert!((out.spl - 0.5 / 3.0).abs() < 1e-12); // only the FP spills
        assert_eq!(out.frames_relayed, 10 + 50);
        assert_eq!(out.true_frames, 20);
        assert_eq!(out.positives, 2);
    }

    #[test]
    fn evaluate_oracle_has_perfect_scores() {
        let records = vec![
            scored(vec![label(5, 14)]),
            scored(vec![EventLabel::absent()]),
        ];
        let preds = vec![vec![pred(5, 14)], vec![IntervalPrediction::absent()]];
        let out = evaluate(&preds, &records, 50);
        assert_eq!(out.rec, 1.0);
        assert_eq!(out.spl, 0.0);
        assert_eq!(out.rec_c, 1.0);
        assert_eq!(out.rec_r, 1.0);
    }

    #[test]
    fn evaluate_brute_force_has_full_recall_and_spillage() {
        let records = vec![
            scored(vec![label(5, 14)]),
            scored(vec![EventLabel::absent()]),
        ];
        let preds = vec![vec![pred(1, 50)], vec![pred(1, 50)]];
        let out = evaluate(&preds, &records, 50);
        assert_eq!(out.rec, 1.0);
        // SPL = mean(40/40, 50/50) = 1.
        assert_eq!(out.spl, 1.0);
    }

    #[test]
    fn per_event_breakdown_isolates_events() {
        // Event 0 predicted perfectly; event 1 always missed.
        let records = vec![
            scored(vec![label(1, 10), label(20, 29)]),
            scored(vec![label(5, 14), EventLabel::absent()]),
        ];
        let preds = vec![
            vec![pred(1, 10), IntervalPrediction::absent()],
            vec![pred(5, 14), IntervalPrediction::absent()],
        ];
        let per = evaluate_per_event(&preds, &records, 100);
        assert_eq!(per.len(), 2);
        assert_eq!(per[0].rec, 1.0);
        assert_eq!(per[1].rec, 0.0);
        // Overall REC is the positive-weighted mean of the two.
        let overall = evaluate(&preds, &records, 100);
        assert!((overall.rec - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn existence_precision_counts_true_positives() {
        let records = vec![
            scored(vec![label(1, 10)]),
            scored(vec![EventLabel::absent()]),
        ];
        // One correct positive, one false positive.
        let preds = vec![vec![pred(1, 10)], vec![pred(1, 10)]];
        assert!((existence_precision(&preds, &records) - 0.5).abs() < 1e-12);
        // Nothing predicted: precision defined as 1.
        let none = vec![vec![IntervalPrediction::absent()]; 2];
        assert_eq!(existence_precision(&none, &records), 1.0);
    }

    #[test]
    fn shape_mismatches_surface_as_typed_errors() {
        let records = vec![scored(vec![label(1, 10)])];
        // Wrong number of prediction sets.
        let err = try_evaluate(&[], &records, 100).unwrap_err();
        assert!(matches!(
            err,
            CoreError::ShapeMismatch {
                expected: 1,
                got: 0,
                ..
            }
        ));
        // Wrong number of predictions within a set.
        let err = try_evaluate(&[vec![pred(1, 2), pred(3, 4)]], &records, 100).unwrap_err();
        assert!(matches!(
            err,
            CoreError::ShapeMismatch {
                expected: 1,
                got: 2,
                ..
            }
        ));
        // Per-event form rejects ragged event counts.
        let ragged = vec![
            scored(vec![label(1, 10), label(20, 29)]),
            scored(vec![label(1, 10)]),
        ];
        let preds = vec![
            vec![pred(1, 10), pred(20, 29)],
            vec![pred(1, 10), pred(20, 29)],
        ];
        assert!(try_evaluate_per_event(&preds, &ragged, 100).is_err());
        // The happy path agrees with the panicking wrapper.
        let ok_records = vec![scored(vec![label(1, 10)])];
        let ok_preds = vec![vec![pred(1, 10)]];
        assert_eq!(
            try_evaluate(&ok_preds, &ok_records, 100).unwrap(),
            evaluate(&ok_preds, &ok_records, 100)
        );
    }

    #[test]
    fn union_frames_merges_overlaps() {
        assert_eq!(union_frames(&[pred(1, 10), pred(5, 15)]), 15);
        assert_eq!(union_frames(&[pred(1, 10), pred(11, 20)]), 20); // adjacent
        assert_eq!(union_frames(&[pred(1, 10), pred(20, 29)]), 20); // disjoint
        assert_eq!(union_frames(&[IntervalPrediction::absent()]), 0);
        assert_eq!(union_frames(&[]), 0);
    }

    #[test]
    fn miss_attribution_recalls() {
        let a = MissAttribution {
            detected: 6,
            local_unconfirmed: 1,
            filtered_by_predictor: 2,
            dropped_by_faults: 1,
        };
        assert_eq!(a.total(), 10);
        assert!((a.confirmed_recall() - 0.6).abs() < 1e-12);
        assert!((a.effective_recall() - 0.7).abs() < 1e-12);
        let empty = MissAttribution::default();
        assert_eq!(empty.confirmed_recall(), 1.0);
        assert_eq!(empty.effective_recall(), 1.0);
    }

    #[test]
    fn multi_event_record_averages_over_pairs() {
        let records = vec![scored(vec![label(1, 10), EventLabel::absent()])];
        let preds = vec![vec![pred(1, 10), pred(1, 25)]];
        let out = evaluate(&preds, &records, 100);
        assert_eq!(out.rec, 1.0);
        assert!((out.spl - 0.125).abs() < 1e-12); // (0 + 0.25) / 2
        assert_eq!(out.frames_relayed, 25); // union of [1,10] and [1,25]
    }
}
