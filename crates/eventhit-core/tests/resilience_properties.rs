//! Property-based tests of the resilience primitives: the backoff
//! schedule's deterministic caps and jitter bounds, and the circuit
//! breaker's state machine.

use eventhit_core::resilient::{BreakerConfig, BreakerState, CircuitBreaker, RetryPolicy};
use eventhit_rng::rngs::StdRng;
use eventhit_rng::testkit::{from_fn, vec as vec_of, Strategy};
use eventhit_rng::{prop_assert, prop_assert_eq, property, Rng, SeedableRng};

fn policy() -> impl Strategy<Value = RetryPolicy> {
    from_fn(|rng| {
        let base_delay = rng.random_range(0.01f64..=5.0);
        RetryPolicy {
            base_delay,
            max_delay: base_delay * rng.random_range(1.0f64..=100.0),
            max_attempts: rng.random_range(1u32..=16),
            retry_budget: rng.random_range(0.0f64..=300.0),
        }
    })
}

fn breaker_cfg() -> impl Strategy<Value = BreakerConfig> {
    from_fn(|rng| BreakerConfig {
        failure_threshold: rng.random_range(1u32..=8),
        open_seconds: rng.random_range(0.1f64..=60.0),
        close_threshold: rng.random_range(1u32..=4),
    })
}

/// One breaker stimulus: advance the clock, then report success/failure.
fn events() -> impl Strategy<Value = Vec<(f64, bool)>> {
    vec_of(
        from_fn(|rng| (rng.random_range(0.0f64..=20.0), rng.random())),
        1..120,
    )
}

property! {
    #[test]
    fn generated_policies_are_valid(p in policy()) {
        prop_assert!(p.validate().is_ok());
    }

    #[test]
    fn backoff_caps_are_monotone_and_bounded(p in policy()) {
        let mut prev_cap = 0.0f64;
        for retry in 1..=p.max_attempts {
            let cap = p.cap_for(retry);
            prop_assert!(cap >= prev_cap, "cap must not decrease: {prev_cap} -> {cap}");
            prop_assert!(cap <= p.max_delay);
            prop_assert!(cap >= p.base_delay.min(p.max_delay));
            prev_cap = cap;
        }
        // Once the exponential passes the cap, it saturates there.
        prop_assert_eq!(p.cap_for(1_000), p.max_delay);
    }

    #[test]
    fn jitter_stays_within_bounds(p in policy(), seed in from_fn(|rng| rng.random::<u64>())) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut prev = p.base_delay;
        for retry in 1..=p.max_attempts {
            let d = p.backoff(retry, prev, &mut rng);
            let cap = p.cap_for(retry);
            let lo = p.base_delay.min(cap);
            prop_assert!(d >= lo, "delay {d} below floor {lo}");
            prop_assert!(d <= cap, "delay {d} above cap {cap}");
            prop_assert!(
                d <= (3.0 * prev.max(p.base_delay)).max(lo),
                "delay {d} above decorrelated bound"
            );
            prev = d;
        }
    }

    #[test]
    fn breaker_never_jumps_closed_to_half_open(cfg in breaker_cfg(), evs in events()) {
        let mut b = CircuitBreaker::new(cfg.clone());
        let mut now = 0.0;
        for (dt, ok) in evs {
            now += dt;
            if ok {
                b.on_success(now);
            } else {
                b.on_failure(now);
            }
            let _ = b.state_at(now);
        }
        // Walk the transition log: HalfOpen may only follow Open, and only
        // after the full cool-down; Closed may only follow HalfOpen.
        let mut prev = (f64::NEG_INFINITY, BreakerState::Closed);
        for &(t, s) in &b.transitions {
            prop_assert!(t >= prev.0 || prev.0.is_infinite(), "time goes forward");
            match s {
                BreakerState::HalfOpen => {
                    prop_assert_eq!(prev.1, BreakerState::Open);
                    prop_assert!(
                        t - prev.0 >= cfg.open_seconds,
                        "cool-down not served: {} < {}",
                        t - prev.0,
                        cfg.open_seconds
                    );
                }
                BreakerState::Closed => {
                    prop_assert_eq!(prev.1, BreakerState::HalfOpen);
                }
                BreakerState::Open => {
                    prop_assert!(
                        prev.1 != BreakerState::Open,
                        "open must come from closed or half-open"
                    );
                }
            }
            prev = (t, s);
        }
    }
}
