//! Property-based tests of the §VI.C metrics and interval utilities.

use eventhit_core::infer::{EventScores, IntervalPrediction, ScoredRecord};
use eventhit_core::metrics::{eta, evaluate, spillage_term, union_frames};
use eventhit_core::multi::merge_overlapping;
use eventhit_rng::rngs::StdRng;
use eventhit_rng::testkit::{from_fn, vec as vec_of, Strategy};
use eventhit_rng::{prop_assert, prop_assert_eq, prop_assume, property, Rng};
use eventhit_video::records::EventLabel;

const H: u32 = 100;

fn sample_interval(rng: &mut StdRng) -> (u32, u32) {
    let s = rng.random_range(1u32..=H);
    let len = rng.random_range(0u32..(H - s + 1));
    (s, s + len)
}

fn interval() -> impl Strategy<Value = (u32, u32)> {
    from_fn(sample_interval)
}

fn label() -> impl Strategy<Value = EventLabel> {
    from_fn(|rng| {
        let present: bool = rng.random();
        let iv = sample_interval(rng);
        if present {
            EventLabel {
                present: true,
                start: iv.0,
                end: iv.1,
                censored: false,
            }
        } else {
            EventLabel::absent()
        }
    })
}

fn prediction() -> impl Strategy<Value = IntervalPrediction> {
    from_fn(|rng| {
        let present: bool = rng.random();
        let iv = sample_interval(rng);
        if present {
            IntervalPrediction {
                present: true,
                start: iv.0,
                end: iv.1,
            }
        } else {
            IntervalPrediction::absent()
        }
    })
}

fn scored(labels: Vec<EventLabel>) -> ScoredRecord {
    let scores = labels
        .iter()
        .map(|_| EventScores {
            b: 0.5,
            theta: vec![],
        })
        .collect();
    ScoredRecord {
        anchor: 0,
        scores,
        labels,
    }
}

property! {
    #[test]
    fn eta_is_a_fraction(p in prediction(), l in label()) {
        if let Some(e) = eta(&p, &l) {
            prop_assert!((0.0..=1.0).contains(&e));
        } else {
            prop_assert!(!l.present);
        }
    }

    #[test]
    fn eta_one_iff_prediction_covers_label(l in label()) {
        prop_assume!(l.present);
        let covering = IntervalPrediction { present: true, start: 1, end: H };
        prop_assert_eq!(eta(&covering, &l), Some(1.0));
    }

    #[test]
    fn spillage_term_is_a_fraction(p in prediction(), l in label()) {
        let t = spillage_term(&p, &l, H);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&t));
    }

    #[test]
    fn spillage_zero_when_prediction_within_truth(l in label()) {
        prop_assume!(l.present);
        let inside = IntervalPrediction { present: true, start: l.start, end: l.end };
        prop_assert_eq!(spillage_term(&inside, &l, H), 0.0);
    }

    #[test]
    fn union_frames_bounded_by_sum(preds in vec_of(prediction(), 0..6)) {
        let union = union_frames(&preds);
        let sum: u64 = preds.iter().map(IntervalPrediction::frames).sum();
        let max_single = preds.iter().map(IntervalPrediction::frames).max().unwrap_or(0);
        prop_assert!(union <= sum);
        prop_assert!(union >= max_single);
        prop_assert!(union <= H as u64);
    }

    #[test]
    fn evaluate_outputs_are_fractions(
        rows in vec_of((label(), prediction()), 1..20),
    ) {
        let records: Vec<ScoredRecord> = rows.iter().map(|(l, _)| scored(vec![*l])).collect();
        let preds: Vec<Vec<IntervalPrediction>> = rows.iter().map(|(_, p)| vec![*p]).collect();
        let o = evaluate(&preds, &records, H);
        prop_assert!((0.0..=1.0).contains(&o.rec));
        prop_assert!((0.0..=1.0 + 1e-12).contains(&o.spl));
        prop_assert!((0.0..=1.0).contains(&o.rec_c));
        prop_assert!((0.0..=1.0).contains(&o.rec_r));
        prop_assert!(o.rec <= o.rec_c + 1e-12, "frame recall cannot exceed existence recall");
    }

    #[test]
    fn oracle_predictions_score_perfectly(labels in vec_of(label(), 1..20)) {
        let records: Vec<ScoredRecord> = labels.iter().map(|l| scored(vec![*l])).collect();
        let preds: Vec<Vec<IntervalPrediction>> = labels
            .iter()
            .map(|l| {
                vec![if l.present {
                    IntervalPrediction { present: true, start: l.start, end: l.end }
                } else {
                    IntervalPrediction::absent()
                }]
            })
            .collect();
        let o = evaluate(&preds, &records, H);
        prop_assert_eq!(o.spl, 0.0);
        if o.positives > 0 {
            prop_assert_eq!(o.rec, 1.0);
            prop_assert_eq!(o.rec_c, 1.0);
        }
    }

    #[test]
    fn merged_intervals_are_canonical(ivs in vec_of(interval(), 0..10)) {
        let merged = merge_overlapping(ivs.clone());
        // Sorted, non-overlapping, non-adjacent.
        for w in merged.windows(2) {
            prop_assert!(w[0].1 + 1 < w[1].0);
        }
        // Coverage preserved exactly.
        let covered = |set: &[(u32, u32)], v: u32| set.iter().any(|&(s, e)| (s..=e).contains(&v));
        for v in 1..=H {
            prop_assert_eq!(covered(&ivs, v), covered(&merged, v));
        }
    }
}
