#!/bin/bash
# Regenerates every table and figure of the paper (results/*.tsv).
# Full run takes ~20-30 minutes on a laptop-class machine.
set -e
cd "$(dirname "$0")"
SCALE=${SCALE:-0.5}
TRIALS=${TRIALS:-2}
BIN="cargo run --release -q -p eventhit-bench --bin"
mkdir -p results
$BIN table1 -- --scale 1.0            | tee results/table1.tsv
$BIN table2                           | tee results/table2.tsv
$BIN fig4 -- --scale $SCALE --trials $TRIALS | tee results/fig4.tsv
$BIN fig5 -- --scale $SCALE --trials $TRIALS | tee results/fig5.tsv
$BIN fig6 -- --scale $SCALE --trials $TRIALS | tee results/fig6.tsv
$BIN fig7 -- --scale 0.4 --trials 1   | tee results/fig7.tsv
$BIN fig8 -- --scale 1.0 --trials 1   | tee results/fig8.tsv
$BIN fig9 -- --scale $SCALE --trials $TRIALS | tee results/fig9.tsv
$BIN fig10 -- --scale $SCALE --trials $TRIALS | tee results/fig10.tsv
$BIN coverage -- --scale $SCALE --trials $TRIALS | tee results/coverage.tsv
$BIN ablation -- --scale 0.35         | tee results/ablation.tsv
$BIN resources -- --scale $SCALE      | tee results/resources.tsv
$BIN multi_instance -- --scale $SCALE | tee results/multi_instance.tsv
$BIN latency -- --scale $SCALE        | tee results/latency.tsv
$BIN per_event -- --scale $SCALE      | tee results/per_event.tsv
echo "all experiments complete"
