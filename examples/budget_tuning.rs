//! Budget tuning: given a recall requirement and the CI's pricing, search
//! the `(c, α)` grid for the cheapest conformal operating point — the
//! workflow a platform operator would run before deployment.
//!
//! ```text
//! cargo run --release --example budget_tuning [target_recall]
//! ```

use eventhit::core::ci::CiConfig;
use eventhit::core::experiment::{grids, ExperimentConfig, TaskRun};
use eventhit::core::pipeline::Strategy;
use eventhit::core::tasks::task;

fn main() {
    let target: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.9);
    let task = task("TA1").expect("built-in task");
    println!("Tuning {} for target recall >= {target}", task.id);

    let cfg = ExperimentConfig {
        scale: 0.25,
        seed: 3,
        ..Default::default()
    };
    println!("Training ...");
    let run = TaskRun::execute(&task, &cfg);
    let ci = CiConfig::default();

    // Grid search over the conformal knobs on the held-out split.
    let mut feasible: Vec<(Strategy, f64, f64)> = Vec::new(); // (strategy, rec, expense)
    for strategy in grids::ehcr() {
        let o = run.evaluate(&strategy);
        if o.rec >= target {
            let expense = run.cost(&o, &ci).expense;
            feasible.push((strategy, o.rec, expense));
        }
    }

    let bf = run.cost(&run.brute_force_outcome(), &ci).expense;
    let opt = run.cost(&run.oracle_outcome(), &ci).expense;
    println!("\n  brute-force expense: ${bf:.2} (upper bound)");
    println!("  oracle expense:      ${opt:.2} (lower bound)");

    match feasible.into_iter().min_by(|a, b| a.2.total_cmp(&b.2)) {
        Some((strategy, rec, expense)) => {
            println!("\n  cheapest feasible operating point: {strategy:?}");
            println!("  achieved recall: {rec:.3}");
            println!("  expense:         ${expense:.2}");
            println!("  saving vs BF:    {:.1}x", bf / expense.max(1e-9));
        }
        None => {
            println!("\n  no grid point reaches recall {target}; raise --scale (more");
            println!("  training data) or extend the grid toward c, alpha -> 1.");
        }
    }
}
