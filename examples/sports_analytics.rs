//! Sports analytics: explore the conformal knobs on a THUMOS-like diving
//! stream and watch the paper's guarantees appear empirically.
//!
//! Prints, for a grid of confidence levels `c`, the achieved existence
//! recall (`REC_c`, guaranteed ≥ c by Theorem 4.2) and, for a grid of
//! coverage levels `α`, the achieved interval recall (`REC_r`) — the two
//! tunable trade-offs of §IV and §V.
//!
//! ```text
//! cargo run --release --example sports_analytics
//! ```

use eventhit::core::experiment::{ExperimentConfig, TaskRun};
use eventhit::core::pipeline::Strategy;
use eventhit::core::tasks::task;

fn main() {
    let task = task("TA11").expect("built-in task"); // E8: Diving
    println!("Sports task {}: {:?}\n", task.id, task.events);

    let cfg = ExperimentConfig {
        scale: 0.3,
        seed: 5,
        ..Default::default()
    };
    println!("Training ...");
    let run = TaskRun::execute(&task, &cfg);
    let positives = run.test.iter().filter(|r| r.labels[0].present).count();
    println!(
        "  {} test horizons, {} containing a dive\n",
        run.test.len(),
        positives
    );

    println!("C-CLASSIFY (existence): guarantee P(miss) <= 1 - c");
    println!("  c      REC_c   (>= c?)   SPL");
    for c in [0.5, 0.7, 0.8, 0.9, 0.95, 0.99] {
        let o = run.evaluate(&Strategy::Ehc { c });
        println!(
            "  {c:<5}  {:.3}   {}      {:.3}",
            o.rec_c,
            if o.rec_c + 0.05 >= c { "yes" } else { "no " },
            o.spl
        );
    }

    println!("\nC-REGRESS (interval): wider bands at higher alpha");
    println!("  alpha  REC_r   SPL");
    for alpha in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let o = run.evaluate(&Strategy::Ehr { tau1: 0.5, alpha });
        println!("  {alpha:<5}  {:.3}   {:.3}", o.rec_r, o.spl);
    }

    println!("\nCombined (EHCR): any recall is reachable");
    println!("  c      alpha  REC     SPL");
    for (c, alpha) in [(0.8, 0.5), (0.9, 0.7), (0.95, 0.9), (0.99, 0.9)] {
        let o = run.evaluate(&Strategy::Ehcr { c, alpha });
        println!("  {c:<5}  {alpha:<5}  {:.3}   {:.3}", o.rec, o.spl);
    }
}
