//! Quickstart: train EventHit on a synthetic sports stream, calibrate it,
//! and compare the plain thresholded predictor (EHO) against the fully
//! conformal one (EHCR).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use eventhit::core::ci::CiConfig;
use eventhit::core::experiment::{ExperimentConfig, TaskRun};
use eventhit::core::pipeline::Strategy;
use eventhit::core::tasks::task;

fn main() {
    // TA10 predicts "Volleyball Spiking" occurrences in a THUMOS-like
    // stream (collection window M = 10, horizon H = 200 frames).
    let task = task("TA10").expect("built-in task");
    println!(
        "Task {}: events {:?} on {:?}",
        task.id, task.events, task.dataset
    );

    // Generate the stream, train the model, fit conformal calibration.
    // scale=0.25 keeps this example under ~10 s; raise it for a better
    // model.
    let cfg = ExperimentConfig {
        scale: 0.25,
        seed: 7,
        ..Default::default()
    };
    println!("Generating stream + training EventHit ...");
    let run = TaskRun::execute(&task, &cfg);
    println!(
        "  {} train / {} calibration / {} test records; final loss {:.4}",
        run.train_records.len(),
        run.calib.len(),
        run.test.len(),
        run.train_report.final_loss
    );

    // Evaluate the two extremes of the paper's strategy family.
    let eho = run.evaluate(&Strategy::Eho { tau1: 0.5 });
    let ehcr = run.evaluate(&Strategy::Ehcr {
        c: 0.95,
        alpha: 0.9,
    });
    println!("\n  strategy        REC     SPL");
    println!("  EHO (τ=0.5)   {:.3}   {:.3}", eho.rec, eho.spl);
    println!("  EHCR(c=.95,α=.9) {:.3}   {:.3}", ehcr.rec, ehcr.spl);

    // What does that mean in dollars?  ($0.001/frame, Amazon Rekognition)
    let ci = CiConfig::default();
    let bf = run.brute_force_outcome();
    let cost_bf = run.cost(&bf, &ci);
    let cost_ehcr = run.cost(&ehcr, &ci);
    println!(
        "\n  Brute force sends {} frames (${:.2}); EHCR sends {} (${:.2}) \
         while catching {:.0}% of event frames.",
        cost_bf.frames_relayed,
        cost_bf.expense,
        cost_ehcr.frames_relayed,
        cost_ehcr.expense,
        ehcr.rec * 100.0
    );
    println!(
        "  Savings: {:.1}x cheaper than sending everything.",
        cost_bf.expense / cost_ehcr.expense.max(1e-9)
    );
}
