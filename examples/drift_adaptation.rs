//! Drift detection and adaptation (the paper's §VIII future-work item).
//!
//! Trains EventHit on a volleyball stream, then simulates a camera/scene
//! change by corrupting the feature distribution of the live stream. The
//! conformal p-values of true events collapse toward zero, a power
//! martingale raises an alarm with a provable false-alarm bound, and a
//! sliding-window recalibration restores the recall guarantee.
//!
//! ```text
//! cargo run --release --example drift_adaptation
//! ```

use eventhit::core::drift::{DriftDetector, DriftStatus, Recalibrator};
use eventhit::core::experiment::{ExperimentConfig, TaskRun};
use eventhit::core::infer::score_records;
use eventhit::core::pipeline::Strategy;
use eventhit::core::tasks::task;
use eventhit::video::records::Record;

fn corrupt(records: &[Record]) -> Vec<Record> {
    // Scene change: the precursor signal disappears almost entirely (e.g. the
    // camera angle changed) — the trained model scores positives like noise.
    records
        .iter()
        .map(|r| {
            let mut cov = r.covariates.clone();
            for row in 0..cov.rows() {
                for col in 3..cov.cols() {
                    cov[(row, col)] = cov[(row, col)] * 0.05 + 0.02;
                }
            }
            Record {
                anchor: r.anchor,
                covariates: cov,
                labels: r.labels.clone(),
            }
        })
        .collect()
}

fn main() {
    let t = task("TA10").expect("built-in task");
    println!("Training EventHit on {} ...", t.id);
    let cfg = ExperimentConfig {
        scale: 0.3,
        seed: 21,
        ..Default::default()
    };
    let run = TaskRun::execute(&t, &cfg);

    // Phase 1: stationary operation — p-values of positives behave.
    let mut detector = DriftDetector::new(0.2, 0.01);
    let c = 0.9;
    let mut phase1_miss = (0, 0);
    for rec in run.test.clone() {
        if !rec.labels[0].present {
            continue;
        }
        let p = run.state.classifier(0).p_value(rec.scores[0].b);
        detector.observe(p);
        phase1_miss.1 += 1;
        if !run.state.classifier(0).predict(rec.scores[0].b, c) {
            phase1_miss.0 += 1;
        }
    }
    println!(
        "\nPhase 1 (stationary): miss rate {:.3} (bound {:.3}), drift status {:?}",
        phase1_miss.0 as f64 / phase1_miss.1.max(1) as f64,
        1.0 - c,
        detector.status()
    );

    // Phase 2: the scene changes. Deployments restart the martingale
    // periodically (each epoch carries its own `delta` false-alarm bound);
    // without restarts, long stationary stretches build up a negative
    // log-martingale buffer that delays detection.
    detector.reset();
    println!("\n-- scene change: detector gain drops --");
    let drifted_records = corrupt(&run.test_records);
    let drifted = score_records(&run.model, &drifted_records, 128);
    let mut recalibrator = Recalibrator::new(400, 1, 0.5, run.horizon);
    let mut alarm_at = None;
    let mut phase2_miss = (0, 0);
    for (i, rec) in drifted.iter().enumerate() {
        recalibrator.push(rec.clone());
        if !rec.labels[0].present {
            continue;
        }
        let p = run.state.classifier(0).p_value(rec.scores[0].b);
        if detector.observe(p) == DriftStatus::Drift && alarm_at.is_none() {
            alarm_at = Some(i);
        }
        phase2_miss.1 += 1;
        if !run.state.classifier(0).predict(rec.scores[0].b, c) {
            phase2_miss.0 += 1;
        }
    }
    println!(
        "Phase 2 (drifted, stale calibration): miss rate {:.3} — guarantee broken",
        phase2_miss.0 as f64 / phase2_miss.1.max(1) as f64
    );
    match alarm_at {
        Some(i) => println!("Martingale alarm after {i} drifted records"),
        None => println!("(no alarm raised — drift too mild at this scale)"),
    }

    // Phase 3: refit the conformal state from the recent window.
    let fresh = recalibrator.refit();
    let mut phase3_miss = (0, 0);
    let mut relayed = 0u64;
    for rec in &drifted {
        let pred = fresh.predict(rec, &Strategy::Ehcr { c, alpha: 0.9 });
        relayed += pred[0].frames();
        if !rec.labels[0].present {
            continue;
        }
        phase3_miss.1 += 1;
        if !pred[0].present {
            phase3_miss.0 += 1;
        }
    }
    println!(
        "\nPhase 3 (recalibrated): miss rate {:.3} (bound {:.3}), {} frames relayed",
        phase3_miss.0 as f64 / phase3_miss.1.max(1) as f64,
        1.0 - c,
        relayed
    );
    println!("Recalibration restores the conformal guarantee without retraining.");
}
