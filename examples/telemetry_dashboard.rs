//! Telemetry quickstart: thread one recorder through training, resilient
//! marshalling, and the CI queue simulator, then render the run dashboard
//! — counters, gauges, latency quantiles (p50/p95/p99), and a span
//! flamegraph — and export the canonical JSONL trace.
//!
//! The wall-clock recorder gives real span timings; the manual-clock coda
//! at the end shows the determinism contract: with the simulation driving
//! the clock, the trace fingerprint is a pure function of the seed.
//!
//! ```bash
//! cargo run --release --example telemetry_dashboard          # seed 42
//! cargo run --release --example telemetry_dashboard -- 7     # another seed
//! ```

use std::sync::Arc;

use eventhit::core::ci_queue::{simulate_instrumented, QueueConfig, Submission};
use eventhit::core::experiment::{ExperimentConfig, TaskRun};
use eventhit::core::marshal::Marshaller;
use eventhit::core::pipeline::Strategy;
use eventhit::core::resilient::{ResilienceConfig, ResilientCiClient};
use eventhit::core::tasks::task;
use eventhit::core::train::{train_instrumented, TrainConfig};
use eventhit::core::{CiConfig, FaultConfig};
use eventhit::telemetry::Telemetry;
use eventhit::video::detector::StageModel;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    // One wall-clock recorder shared by every stage of the run.
    let tel = Arc::new(Telemetry::new());

    println!("Training EventHit on a THUMOS-like stream (seed {seed})...");
    let mut run = TaskRun::execute(&task("TA10").unwrap(), &ExperimentConfig::quick(seed));

    // A short instrumented fine-tune: `train` / `train.epoch` spans,
    // per-step timing histogram, loss and throughput gauges.
    train_instrumented(
        &mut run.model,
        &run.train_records,
        &TrainConfig {
            epochs: 2,
            ..Default::default()
        },
        &tel,
    );

    // Resilient marshalling over a bursty channel, with the marshaller and
    // the CI client reporting to the same recorder: degradation tags,
    // fault kinds, retries, breaker transitions, delivery latencies.
    let (stream, features) = (run.stream.clone(), run.features.clone());
    let (from, to) = (run.window as u64, run.stream.len);
    let mut m = Marshaller::new(
        run.model,
        run.state,
        Strategy::Ehcr { c: 0.9, alpha: 0.5 },
        run.window,
        run.horizon,
        CiConfig::default(),
    );
    m.set_telemetry(Arc::clone(&tel));

    let faults = FaultConfig {
        p_good_to_bad: 0.2,
        p_bad_to_good: 0.3,
        bad_loss: 1.0,
        transient_prob: 0.05,
        ..FaultConfig::reliable()
    };
    let mut client = ResilientCiClient::new(
        faults,
        ResilienceConfig::default(),
        StageModel::new("ci", 1000.0),
        seed,
    )
    .unwrap();
    client.set_telemetry(Arc::clone(&tel));

    let res = m
        .run_resilient(&stream, &features, from, to, 30.0, &mut client)
        .unwrap();
    println!(
        "Marshalled {} horizons (availability {:.3}).",
        res.horizons,
        res.stats.availability()
    );

    // A CI queue simulation on the same recorder: backlog gauge plus the
    // `ciq.latency_seconds` histogram behind the dashboard's quantiles.
    let subs: Vec<Submission> = (0..120)
        .map(|i| Submission {
            arrival_frame: i * 45,
            frames: 60,
        })
        .collect();
    simulate_instrumented(&subs, &QueueConfig::default(), Some(&tel)).unwrap();

    // The run dashboard.
    let snap = tel.snapshot();
    println!("\n{}", snap.render());

    let jsonl = snap.to_jsonl();
    println!(
        "JSONL trace: {} lines, fingerprint {:#018x} (wall clock — timings vary run to run).",
        jsonl.lines().count(),
        snap.fingerprint()
    );

    // Determinism coda: drive the clock from the simulation instead of the
    // wall, and the whole trace becomes a pure function of the inputs.
    let replay = |s: u64| {
        let t = Telemetry::with_manual_clock();
        let subs: Vec<Submission> = (0..60)
            .map(|i| Submission {
                arrival_frame: i * (45 + s % 7),
                frames: 60,
            })
            .collect();
        simulate_instrumented(&subs, &QueueConfig::default(), Some(&t)).unwrap();
        t.snapshot().fingerprint()
    };
    let (a, b) = (replay(seed), replay(seed));
    assert_eq!(a, b, "manual-clock traces replay bit-identically");
    println!("Manual-clock replay: fingerprint {a:#018x} twice — bit-identical.");
}
