//! Fault-injection quickstart: marshal a stream over an unreliable cloud
//! path and watch availability, retries, and miss attribution.
//!
//! The channel is a seed-driven Gilbert–Elliott model (correlated outage
//! bursts) plus independent transient/timeout/throttle bands; the client
//! answers with capped-exponential backoff, a circuit breaker, and a
//! dead-letter degradation policy. Re-running with the same seed replays
//! the fault trace bit-for-bit.
//!
//! ```bash
//! cargo run --release --example fault_injection          # seed 42
//! cargo run --release --example fault_injection -- 7     # another seed
//! ```

use eventhit::core::experiment::{ExperimentConfig, TaskRun};
use eventhit::core::marshal::Marshaller;
use eventhit::core::pipeline::Strategy;
use eventhit::core::report::ResilienceReport;
use eventhit::core::resilient::{ResilienceConfig, ResilientCiClient};
use eventhit::core::tasks::task;
use eventhit::core::{CiConfig, FaultConfig};
use eventhit::video::detector::StageModel;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    println!("Training EventHit on a THUMOS-like stream (seed {seed})...");
    let run = TaskRun::execute(&task("TA10").unwrap(), &ExperimentConfig::quick(seed));
    let (stream, features) = (run.stream.clone(), run.features.clone());
    let (from, to) = (run.window as u64, run.stream.len);
    let mut m = Marshaller::new(
        run.model,
        run.state,
        Strategy::Ehcr { c: 0.9, alpha: 0.5 },
        run.window,
        run.horizon,
        CiConfig::default(),
    );

    // A bursty channel: correlated outages plus occasional transient errors.
    let faults = FaultConfig {
        p_good_to_bad: 0.2,
        p_bad_to_good: 0.3,
        bad_loss: 1.0,
        transient_prob: 0.05,
        ..FaultConfig::reliable()
    };
    let mut client = ResilientCiClient::new(
        faults,
        ResilienceConfig::default(),
        StageModel::new("ci", 1000.0),
        seed,
    )
    .unwrap();

    let res = m
        .run_resilient(&stream, &features, from, to, 30.0, &mut client)
        .unwrap();

    println!(
        "\nMarshalled {} horizons over a faulted channel (trace fingerprint {:#018x}):\n",
        res.horizons, res.fault_fingerprint
    );
    println!(
        "{}",
        ResilienceReport::from_stats(&res.stats, res.attribution).to_markdown()
    );
}
