//! Surveillance automation: marshal a VIRAT-like multi-event stream
//! online — the deployment loop of the paper's Fig. 1.
//!
//! Trains EventHit for two events ("Person Opening a Vehicle" and "Person
//! getting out of a Vehicle"), then walks the held-out tail of the stream
//! horizon by horizon, relaying only predicted occurrence intervals to the
//! simulated cloud service, and reports detections, recall, and spend.
//!
//! ```text
//! cargo run --release --example surveillance
//! ```

use eventhit::core::ci::CiConfig;
use eventhit::core::experiment::{ExperimentConfig, TaskRun};
use eventhit::core::marshal::Marshaller;
use eventhit::core::pipeline::Strategy;
use eventhit::core::tasks::task;

fn main() {
    // TA7 = {E1: Person Opening a Vehicle, E5: Person getting out of a
    // Vehicle} on the VIRAT profile (M = 25, H = 500).
    let task = task("TA7").expect("built-in task");
    println!("Surveillance task {}: {:?}", task.id, task.events);

    let cfg = ExperimentConfig {
        scale: 0.2,
        seed: 11,
        ..Default::default()
    };
    println!("Training EventHit on the stream prefix ...");
    let run = TaskRun::execute(&task, &cfg);

    // Deploy with a high-recall conformal configuration: the 1 - c = 5%
    // miss bound and the α = 0.9 interval coverage are the paper's knobs.
    let strategy = Strategy::Ehcr {
        c: 0.95,
        alpha: 0.9,
    };
    let horizon = run.horizon;
    let window = run.window;
    let stream = run.stream.clone();
    let features = run.features.clone();
    let mut marshaller = Marshaller::new(
        run.model,
        run.state,
        strategy,
        window,
        horizon,
        CiConfig::default(),
    );

    // Marshal the final quarter of the stream (the model never saw it).
    let from = (stream.len * 3) / 4;
    println!("Marshalling frames {from}..{} ...", stream.len);
    let result = marshaller.run(&stream, &features, from, stream.len);

    println!("\n  horizons walked      : {}", result.horizons);
    println!("  events in region     : {}", result.ground_truth.len());
    println!("  segments relayed     : {}", result.segments.len());
    println!("  frames relayed       : {}", result.cost.frames_relayed);
    println!("  frames covered       : {}", result.cost.frames_covered);
    println!(
        "  instance recall      : {:.1}%",
        result.instance_recall() * 100.0
    );
    println!(
        "  frame recall         : {:.1}%",
        result.frame_recall() * 100.0
    );
    println!("  cloud expense        : ${:.2}", result.cost.expense);
    let bf_expense = result.cost.frames_covered as f64 * CiConfig::default().price_per_frame;
    println!("  brute-force expense  : ${bf_expense:.2}");
    let (fe, pr, ci) = result.cost.stage_fractions();
    println!(
        "  time split           : {:.1}% features, {:.1}% EventHit, {:.1}% cloud",
        fe * 100.0,
        pr * 100.0,
        ci * 100.0
    );

    for seg in result.segments.iter().take(5) {
        println!(
            "  e.g. relayed frames {}..{} for event {}",
            seg.start, seg.end, task.events[seg.event]
        );
    }
}
